(** Hand-written lexer for mini-C.

    The lexer keeps `#pragma` lines as single tokens so that the parser can
    attach vectorization pragmas to the loop that follows them, mirroring how
    Clang associates [#pragma clang loop] directives. *)

exception Error of string * Token.pos

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; off = 0; line = 1; col = 1 }

let pos st : Token.pos = { line = st.line; col = st.col }

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.off <- st.off + 1

let error st msg = raise (Error (msg, pos st))

let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      let rec skip () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            skip ()
      in
      skip ();
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec skip () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> error st "unterminated block comment"
        | Some _, _ ->
            advance st;
            skip ()
      in
      skip ();
      skip_ws_and_comments st
  | _ -> ()

let lex_number st : Token.t =
  let start = st.off in
  let is_hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if is_hex then (
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex_digit c | None -> false) do
      advance st
    done;
    let s = String.sub st.src start (st.off - start) in
    if st.off - start = 2 then error st "hex literal with no digits";
    match Int64.of_string_opt s with
    | Some n -> Token.INT_LIT n
    | None -> error st (Printf.sprintf "integer literal %s out of range" s))
  else begin
    let seen_dot = ref false and seen_exp = ref false in
    let continue () =
      match peek st with
      | Some c when is_digit c -> true
      | Some '.' when not !seen_dot && not !seen_exp ->
          seen_dot := true;
          true
      | Some ('e' | 'E') when not !seen_exp -> (
          match peek2 st with
          | Some c when is_digit c || c = '+' || c = '-' ->
              seen_exp := true;
              true
          | _ -> false)
      | Some ('+' | '-') when !seen_exp ->
          (* only directly after e/E; approximated by checking prev char *)
          let prev = st.src.[st.off - 1] in
          prev = 'e' || prev = 'E'
      | _ -> false
    in
    while continue () do
      advance st
    done;
    (* Swallow suffixes f/F/l/L/u/U *)
    let is_float_suffix = ref false in
    let rec suffixes () =
      match peek st with
      | Some ('f' | 'F') ->
          is_float_suffix := true;
          advance st;
          suffixes ()
      | Some ('l' | 'L' | 'u' | 'U') ->
          advance st;
          suffixes ()
      | _ -> ()
    in
    let body = String.sub st.src start (st.off - start) in
    suffixes ();
    if !seen_dot || !seen_exp || !is_float_suffix then
      match float_of_string_opt body with
      | Some f -> Token.FLOAT_LIT f
      | None -> error st (Printf.sprintf "malformed float literal %s" body)
    else
      match Int64.of_string_opt body with
      | Some n -> Token.INT_LIT n
      | None -> error st (Printf.sprintf "integer literal %s out of range" body)
  end

let lex_ident st : Token.t =
  let start = st.off in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  Token.lookup_keyword (String.sub st.src start (st.off - start))

let lex_char_lit st : Token.t =
  advance st;
  (* opening quote *)
  let c =
    match peek st with
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> '\n'
        | Some 't' -> '\t'
        | Some 'r' -> '\r'
        | Some '0' -> '\000'
        | Some '\\' -> '\\'
        | Some '\'' -> '\''
        | _ -> error st "bad escape in char literal")
    | Some c -> c
    | None -> error st "unterminated char literal"
  in
  advance st;
  (match peek st with
  | Some '\'' -> advance st
  | _ -> error st "unterminated char literal");
  Token.CHAR_LIT c

let lex_string_lit st : Token.t =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some c -> Buffer.add_char buf c
        | None -> error st "unterminated string literal");
        advance st;
        go ())
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
    | None -> error st "unterminated string literal"
  in
  go ();
  Token.STRING_LIT (Buffer.contents buf)

(* A preprocessor line. `#pragma ...` is kept; `#include`, `#define` of
   simple constants, etc., are skipped (the dataset sources carry only
   pragmas and trivial includes). *)
let lex_hash_line st : Token.t option =
  advance st;
  (* '#' *)
  let start = st.off in
  let rec to_eol () =
    match peek st with
    | Some '\n' | None -> ()
    | Some _ ->
        advance st;
        to_eol ()
  in
  to_eol ();
  let text = String.trim (String.sub st.src start (st.off - start)) in
  if String.length text >= 6 && String.sub text 0 6 = "pragma" then
    Some (Token.PRAGMA (String.trim (String.sub text 6 (String.length text - 6))))
  else None

let next_token st : Token.spanned =
  let rec go () =
    skip_ws_and_comments st;
    let p = pos st in
    match peek st with
    | None -> { Token.tok = Token.EOF; pos = p }
    | Some c ->
        let simple tok n =
          for _ = 1 to n do
            advance st
          done;
          { Token.tok; pos = p }
        in
        let two = peek2 st in
        let three =
          if st.off + 2 < String.length st.src then Some st.src.[st.off + 2]
          else None
        in
        if is_digit c || (c = '.' && match two with Some d -> is_digit d | None -> false)
        then { Token.tok = lex_number st; pos = p }
        else if is_ident_start c then { Token.tok = lex_ident st; pos = p }
        else
          match (c, two, three) with
          | '\'', _, _ -> { Token.tok = lex_char_lit st; pos = p }
          | '"', _, _ -> { Token.tok = lex_string_lit st; pos = p }
          | '#', _, _ -> (
              match lex_hash_line st with
              | Some tok -> { Token.tok; pos = p }
              | None -> go ())
          | '<', Some '<', Some '=' -> simple Token.LSHIFT_ASSIGN 3
          | '>', Some '>', Some '=' -> simple Token.RSHIFT_ASSIGN 3
          | '<', Some '<', _ -> simple Token.LSHIFT 2
          | '>', Some '>', _ -> simple Token.RSHIFT 2
          | '<', Some '=', _ -> simple Token.LE 2
          | '>', Some '=', _ -> simple Token.GE 2
          | '=', Some '=', _ -> simple Token.EQEQ 2
          | '!', Some '=', _ -> simple Token.NEQ 2
          | '&', Some '&', _ -> simple Token.AMPAMP 2
          | '|', Some '|', _ -> simple Token.PIPEPIPE 2
          | '+', Some '+', _ -> simple Token.PLUSPLUS 2
          | '-', Some '-', _ -> simple Token.MINUSMINUS 2
          | '+', Some '=', _ -> simple Token.PLUS_ASSIGN 2
          | '-', Some '=', _ -> simple Token.MINUS_ASSIGN 2
          | '*', Some '=', _ -> simple Token.STAR_ASSIGN 2
          | '/', Some '=', _ -> simple Token.SLASH_ASSIGN 2
          | '%', Some '=', _ -> simple Token.PERCENT_ASSIGN 2
          | '&', Some '=', _ -> simple Token.AMP_ASSIGN 2
          | '|', Some '=', _ -> simple Token.PIPE_ASSIGN 2
          | '^', Some '=', _ -> simple Token.CARET_ASSIGN 2
          | '-', Some '>', _ -> simple Token.ARROW 2
          | '(', _, _ -> simple Token.LPAREN 1
          | ')', _, _ -> simple Token.RPAREN 1
          | '{', _, _ -> simple Token.LBRACE 1
          | '}', _, _ -> simple Token.RBRACE 1
          | '[', _, _ -> simple Token.LBRACKET 1
          | ']', _, _ -> simple Token.RBRACKET 1
          | ';', _, _ -> simple Token.SEMI 1
          | ',', _, _ -> simple Token.COMMA 1
          | '?', _, _ -> simple Token.QUESTION 1
          | ':', _, _ -> simple Token.COLON 1
          | '+', _, _ -> simple Token.PLUS 1
          | '-', _, _ -> simple Token.MINUS 1
          | '*', _, _ -> simple Token.STAR 1
          | '/', _, _ -> simple Token.SLASH 1
          | '%', _, _ -> simple Token.PERCENT 1
          | '&', _, _ -> simple Token.AMP 1
          | '|', _, _ -> simple Token.PIPE 1
          | '^', _, _ -> simple Token.CARET 1
          | '~', _, _ -> simple Token.TILDE 1
          | '!', _, _ -> simple Token.BANG 1
          | '<', _, _ -> simple Token.LT 1
          | '>', _, _ -> simple Token.GT 1
          | '=', _, _ -> simple Token.ASSIGN 1
          | '.', _, _ -> simple Token.DOT 1
          | _ -> error st (Printf.sprintf "unexpected character %C" c)
  in
  go ()

(** Tokenize a whole source string. *)
let tokenize src : Token.spanned list =
  let st = make src in
  let rec go acc =
    let t = next_token st in
    match t.Token.tok with
    | Token.EOF -> List.rev (t :: acc)
    | _ -> go (t :: acc)
  in
  go []
