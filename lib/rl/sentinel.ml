(** Numeric-health sentinels for the training loop.

    A long PPO run can die silently: one NaN gradient poisons the Adam
    moments and every weight after it, the policy's entropy can collapse
    to a point mass that never explores again, a bad minibatch can push
    the new policy arbitrarily far from the one that collected the batch
    (approx-KL blow-up), and a broken reward oracle can drift the reward
    scale by orders of magnitude.  None of these raise; they just turn
    the remaining training budget into garbage.

    This module is the watchdog for those {e learning dynamics}: after
    every policy update {!Ppo.train} runs {!check} over the loss, the
    entropy, the approx-KL, the reward scale, every weight and gradient,
    and the optimizer moments.  A trip does not kill the run — it
    triggers the checkpoint-lineage rollback in {!Ppo.train}: restore the
    newest known-good state, apply the deterministic {!backoff} (halve
    the learning rate, tighten the PPO clip), and continue.  The backoff
    schedule is a pure function of (seed, rollback count), so a run that
    trips recovers identically at any rollout pool size, and a run killed
    mid-recovery converges to the same trajectory on resume.

    The non-finite checks are always on (they cannot false-positive);
    the entropy / KL / drift thresholds default to disabled ([0.0]) so
    existing runs are bit-identical until a threshold is opted into.

    Trip and rollback counters are process-global, pulled into the
    {!Stats} scoreboard by the core library (the [rl] library sits below
    it and cannot record directly). *)

type config = {
  ent_floor : float;
      (** trip when policy entropy falls below this; 0 disables *)
  kl_max : float;  (** trip when approx-KL exceeds this; 0 disables *)
  drift_max : float;
      (** trip when |mean reward| exceeds this scale; 0 disables *)
  max_rollbacks : int;  (** give up ({!Unrecoverable}) past this many *)
  backoff_seed : int;  (** seeds the deterministic backoff schedule *)
  inject_nan : update:int -> rollbacks:int -> bool;
      (** fault hook: poison one gradient cell of this update (keyed by
          the rollback count so the post-rollback replay is clean);
          wired to [Faults.nan_grad_hit] by the core library *)
}

let default =
  { ent_floor = 0.0; kl_max = 0.0; drift_max = 0.0; max_rollbacks = 8;
    backoff_seed = 0; inject_nan = (fun ~update:_ ~rollbacks:_ -> false) }

(** Why the sentinel tripped, for the lineage journal and the error
    message when recovery is exhausted. *)
type trip =
  | Non_finite of string  (** which tensor / statistic went NaN or Inf *)
  | Entropy_collapse of float
  | Kl_blowup of float
  | Reward_drift of float

let describe = function
  | Non_finite what -> Printf.sprintf "non-finite %s" what
  | Entropy_collapse e -> Printf.sprintf "entropy collapse (%g)" e
  | Kl_blowup kl -> Printf.sprintf "approx-KL blow-up (%g)" kl
  | Reward_drift r -> Printf.sprintf "reward-scale drift (%g)" r

exception Unrecoverable of string
(** The sentinel tripped more than [max_rollbacks] times: the run cannot
    make progress even with the backoff applied.  Carries the last trip's
    description. *)

(* ------------------------------------------------------------------ *)
(* Counters (process-global; surfaced via Stats)                        *)
(* ------------------------------------------------------------------ *)

let n_trips = Atomic.make 0

let n_rollbacks = Atomic.make 0

let record_trip () = Atomic.incr n_trips

let record_rollback () = Atomic.incr n_rollbacks

let trip_count () = Atomic.get n_trips

let rollback_count () = Atomic.get n_rollbacks

let reset_counters () =
  Atomic.set n_trips 0;
  Atomic.set n_rollbacks 0

(* ------------------------------------------------------------------ *)
(* Health checks                                                        *)
(* ------------------------------------------------------------------ *)

let vec_finite (v : float array) : bool =
  Array.for_all Float.is_finite v

(** Every weight and gradient finite. *)
let params_finite (ps : Nn.Optim.params) : bool =
  List.for_all (fun (p, g) -> vec_finite p && vec_finite g) ps

(** Optimizer moments finite (SGD is stateless, trivially healthy). *)
let optim_finite (o : Nn.Optim.t) : bool =
  match o with
  | Nn.Optim.Sgd _ -> true
  | Nn.Optim.Adam { state = None; _ } -> true
  | Nn.Optim.Adam { state = Some st; _ } ->
      List.for_all (fun (m, v) -> vec_finite m && vec_finite v) st

(** Post-update health verdict: [None] is healthy, [Some trip] must
    trigger recovery.  Non-finite checks run unconditionally; the
    threshold checks only when their knob is enabled. *)
let check (cfg : config) ~(params : Nn.Optim.params) ~(optim : Nn.Optim.t)
    ~(loss : float) ~(entropy : float) ~(reward_mean : float)
    ~(approx_kl : float) : trip option =
  if not (Float.is_finite loss) then Some (Non_finite "loss")
  else if not (Float.is_finite entropy) then Some (Non_finite "entropy")
  else if not (Float.is_finite reward_mean) then
    Some (Non_finite "reward mean")
  else if not (Float.is_finite approx_kl) then Some (Non_finite "approx-KL")
  else if not (params_finite params) then
    Some (Non_finite "weights or gradients")
  else if not (optim_finite optim) then Some (Non_finite "Adam moments")
  else if cfg.ent_floor > 0.0 && entropy < cfg.ent_floor then
    Some (Entropy_collapse entropy)
  else if cfg.kl_max > 0.0 && approx_kl > cfg.kl_max then
    Some (Kl_blowup approx_kl)
  else if cfg.drift_max > 0.0 && Float.abs reward_mean > cfg.drift_max then
    Some (Reward_drift reward_mean)
  else None

(* ------------------------------------------------------------------ *)
(* Deterministic backoff                                                *)
(* ------------------------------------------------------------------ *)

type backoff = {
  lr_scale : float;  (** multiplier on the run's base learning rate *)
  clip_scale : float;  (** multiplier on the run's base PPO clip *)
}

(** The cumulative backoff after [rollbacks] recoveries: the learning
    rate is halved per rollback (with a small seeded nudge so symmetric
    failure loops cannot repeat exactly), the clip tightened by 0.8 per
    rollback down to a floor of 0.25x.  Pure in
    [hash(seed, rollback_count)] — no clock, no pool size, no evaluation
    order — so jobs N and jobs 1 back off identically, and a resumed run
    reconstructs the same schedule from the persisted rollback count. *)
let backoff ~(seed : int) ~(rollbacks : int) : backoff =
  if rollbacks <= 0 then { lr_scale = 1.0; clip_scale = 1.0 }
  else begin
    let d =
      Digest.string
        (Printf.sprintf "neurovec-backoff\x00%d\x00%d" seed rollbacks)
    in
    let u = float_of_int (Char.code d.[0]) /. 255.0 in
    let r = float_of_int rollbacks in
    { lr_scale = (0.5 ** r) *. (0.75 +. (0.5 *. u));
      clip_scale = Float.max 0.25 (0.8 ** r) }
  end
