(** Agent checkpoints.

    The paper's deployment story (Section 4.2) is train-once /
    infer-forever: the trained policy ships with the compiler and makes a
    single forward pass per loop.  These helpers persist a trained agent —
    embedding tables, trunk, heads, and action-space configuration — plus,
    since format v2, optional resumable training state
    ({!Train_state.t}), so a killed run can continue from its last
    periodic checkpoint.

    {b Format v2} (current): a marshalled [(magic, version)] header, the
    marshalled payload bytes, then a CRC32 integrity footer over those
    bytes.  Files are written atomically (temp file in the same directory
    + rename), so a crash mid-write can never leave a truncated file under
    the checkpoint's name.  v1 files (header + bare agent, no footer) are
    still loadable.  The model is plain data — float arrays and
    configuration records — so OCaml's Marshal is safe here; the file is
    tied to the OCaml version like any Marshal artifact.

    Every load failure — wrong magic, unsupported version, truncated
    header {e or body}, CRC mismatch, unmarshalable payload — surfaces as
    {!Bad_checkpoint}; no raw [Failure]/[End_of_file] escapes. *)

let magic = "neurovec-agent"

let version = 2

exception Bad_checkpoint of string

type payload = {
  p_agent : Agent.t;
  p_state : Train_state.t option;  (** resumable training state, if any *)
}

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, the zlib polynomial)                              *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      c :=
        Int32.logxor
          table.(Int32.to_int
                   (Int32.logand
                      (Int32.logxor !c (Int32.of_int (Char.code ch)))
                      0xFFl))
          (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Save / load                                                          *)
(* ------------------------------------------------------------------ *)

(* create [dir] and any missing parents (a periodic checkpoint into
   out/run1/ckpts must not crash mid-training because the directory does
   not exist yet); clear error when a component exists as a file *)
let rec ensure_dir (dir : string) : unit =
  if dir = "" || dir = "." || dir = "/" then ()
  else if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise
        (Sys_error (Printf.sprintf "%s exists but is not a directory" dir))
  end
  else begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

(** Write [agent] (and optionally resumable training [state]) to [path],
    atomically: the bytes land in a temp file first and are renamed over
    [path] only once complete, so an interrupted save leaves the previous
    checkpoint intact.  Missing parent directories are created. *)
let save ?state (agent : Agent.t) (path : string) : unit =
  ensure_dir (Filename.dirname path);
  let body = Marshal.to_string { p_agent = agent; p_state = state } [] in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_value oc (magic, version);
     output_value oc body;
     output_value oc (crc32 body);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(** Load an agent and whatever training state the file carries.  Accepts
    v1 (agent only) and v2; raises {!Bad_checkpoint} on any corruption. *)
let load_full (path : string) : Agent.t * Train_state.t option =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m, v =
        try (input_value ic : string * int)
        with _ -> raise (Bad_checkpoint "not an agent checkpoint")
      in
      if m <> magic then
        raise
          (Bad_checkpoint
             (Printf.sprintf "expected %s, found %s" magic m));
      match v with
      | 1 ->
          (* v1: the agent record follows the header directly *)
          let agent =
            try (input_value ic : Agent.t)
            with _ -> raise (Bad_checkpoint "truncated or corrupt v1 body")
          in
          (agent, None)
      | 2 ->
          let body =
            try (input_value ic : string)
            with _ -> raise (Bad_checkpoint "truncated or corrupt body")
          in
          let stored =
            try (input_value ic : int32)
            with _ -> raise (Bad_checkpoint "missing integrity footer")
          in
          if crc32 body <> stored then
            raise
              (Bad_checkpoint "integrity check failed (CRC32 mismatch)");
          let payload =
            try (Marshal.from_string body 0 : payload)
            with _ -> raise (Bad_checkpoint "corrupt payload")
          in
          (payload.p_agent, payload.p_state)
      | v ->
          raise
            (Bad_checkpoint
               (Printf.sprintf "unsupported %s version %d (latest is %d)"
                  magic v version)))

let load (path : string) : Agent.t = fst (load_full path)
