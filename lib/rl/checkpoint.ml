(** Agent checkpoints.

    The paper's deployment story (Section 4.2) is train-once /
    infer-forever: the trained policy ships with the compiler and makes a
    single forward pass per loop.  These helpers persist a trained agent —
    embedding tables, trunk, heads, and action-space configuration — plus,
    since format v2, optional resumable training state
    ({!Train_state.t}), so a killed run can continue from its last
    periodic checkpoint.

    {b Format v3} (current): a marshalled [(magic, version)] header, the
    marshalled payload bytes, then a CRC32 integrity footer over those
    bytes.  v3 extends the training state with the sentinel rollback
    count ({!Train_state.ts_rollbacks}); v2 files (the same framing
    around the older state record) and v1 files (header + bare agent, no
    footer) are still loadable.  Files are written atomically through
    {!Fsio.atomic_replace} (temp file in the same directory + rename), so
    neither a crash nor an injected disk fault mid-write can ever leave a
    truncated file under the checkpoint's name — the previous checkpoint
    survives bit for bit.  The model is plain data — float arrays and
    configuration records — so OCaml's Marshal is safe here; the file is
    tied to the OCaml version like any Marshal artifact.

    Every load failure — wrong magic, unsupported version, truncated
    header {e or body}, CRC mismatch, unmarshalable payload — surfaces as
    {!Bad_checkpoint}; no raw [Failure]/[End_of_file] escapes.

    {!Lineage} layers self-healing on top: a ring of the last K
    checkpoints, each admitted only after a post-save health check, with
    quarantine ([.bad]) for files that fail it — the rollback targets for
    the training sentinels ({!Sentinel}). *)

let magic = "neurovec-agent"

let version = 3

exception Bad_checkpoint of string

type payload = {
  p_agent : Agent.t;
  p_state : Train_state.t option;  (** resumable training state, if any *)
}

(* the v2 payload, kept only to decode old files: Marshal is structural,
   so the pre-[ts_rollbacks] state record needs its own type *)
type v2_state = {
  v2_steps : int;
  v2_update : int;
  v2_history : Train_state.stats list;
  v2_optim : Nn.Optim.t;
}

type v2_payload = { v2_agent : Agent.t; v2_state : v2_state option }

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, the zlib polynomial)                              *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      c :=
        Int32.logxor
          table.(Int32.to_int
                   (Int32.logand
                      (Int32.logxor !c (Int32.of_int (Char.code ch)))
                      0xFFl))
          (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Save / load                                                          *)
(* ------------------------------------------------------------------ *)

(* create [dir] and any missing parents (a periodic checkpoint into
   out/run1/ckpts must not crash mid-training because the directory does
   not exist yet); clear error when a component exists as a file *)
let rec ensure_dir (dir : string) : unit =
  if dir = "" || dir = "." || dir = "/" then ()
  else if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise
        (Sys_error (Printf.sprintf "%s exists but is not a directory" dir))
  end
  else begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

(* the exact on-disk bytes: [Marshal.to_string v []] produces the same
   representation [output_value] would, composed here so the whole file
   can go through one guarded atomic write *)
let compose ?state (agent : Agent.t) : string =
  let body = Marshal.to_string { p_agent = agent; p_state = state } [] in
  Marshal.to_string (magic, version) []
  ^ Marshal.to_string body []
  ^ Marshal.to_string (crc32 body) []

(** Write [agent] (and optionally resumable training [state]) to [path],
    atomically: the bytes land in a temp file first and are renamed over
    [path] only once complete, so an interrupted save — crash or injected
    disk fault ({!Fsio.Disk_fault}) — leaves the previous checkpoint
    intact.  Missing parent directories are created. *)
let save ?state (agent : Agent.t) (path : string) : unit =
  ensure_dir (Filename.dirname path);
  Fsio.atomic_replace ~op:"checkpoint" path (compose ?state agent)

(** Load an agent and whatever training state the file carries.  Accepts
    v1 (agent only), v2 and v3; raises {!Bad_checkpoint} on any
    corruption. *)
let load_full (path : string) : Agent.t * Train_state.t option =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m, v =
        try (input_value ic : string * int)
        with _ -> raise (Bad_checkpoint "not an agent checkpoint")
      in
      if m <> magic then
        raise
          (Bad_checkpoint
             (Printf.sprintf "expected %s, found %s" magic m));
      let checked_body () =
        let body =
          try (input_value ic : string)
          with _ -> raise (Bad_checkpoint "truncated or corrupt body")
        in
        let stored =
          try (input_value ic : int32)
          with _ -> raise (Bad_checkpoint "missing integrity footer")
        in
        if crc32 body <> stored then
          raise (Bad_checkpoint "integrity check failed (CRC32 mismatch)");
        body
      in
      match v with
      | 1 ->
          (* v1: the agent record follows the header directly *)
          let agent =
            try (input_value ic : Agent.t)
            with _ -> raise (Bad_checkpoint "truncated or corrupt v1 body")
          in
          (agent, None)
      | 2 ->
          let body = checked_body () in
          let p =
            try (Marshal.from_string body 0 : v2_payload)
            with _ -> raise (Bad_checkpoint "corrupt payload")
          in
          ( p.v2_agent,
            Option.map
              (fun (s : v2_state) ->
                { Train_state.ts_steps = s.v2_steps;
                  ts_update = s.v2_update; ts_history = s.v2_history;
                  ts_optim = s.v2_optim; ts_rollbacks = 0 })
              p.v2_state )
      | 3 ->
          let body = checked_body () in
          let payload =
            try (Marshal.from_string body 0 : payload)
            with _ -> raise (Bad_checkpoint "corrupt payload")
          in
          (payload.p_agent, payload.p_state)
      | v ->
          raise
            (Bad_checkpoint
               (Printf.sprintf "unsupported %s version %d (latest is %d)"
                  magic v version)))

let load (path : string) : Agent.t = fst (load_full path)

(* ------------------------------------------------------------------ *)
(* Known-good lineage                                                   *)
(* ------------------------------------------------------------------ *)

(** Last-known-good checkpoint lineage.

    One checkpoint file is not a recovery story: the save that follows a
    {e numerically sick} update overwrites the only good state with a bad
    one.  The lineage keeps a ring of the last K generations —
    [path] (newest), [path.1], ... [path.K-1] (oldest) — and admits a
    new head only after a {b post-save health check}: the file must
    reload cleanly (magic, CRC, unmarshal) and carry finite weights,
    gradients and optimizer moments.  A file that fails the check — at
    save time or when {!newest_good} walks the ring during a rollback —
    is quarantined as [<file>.bad] (replacing any previous quarantine)
    for post-mortem, never silently deleted.

    Every lineage event is journaled to [<path>.lineage], one
    "."-terminated line per event ([S]ave, [B]ad-quarantine, [R]ollback,
    [G]ood-restore), deliberately {e outside} the injected-disk-fault
    scope: the audit trail that proves every rollback happened must
    survive the disk chaos it documents. *)
module Lineage = struct
  let ring_path (path : string) (i : int) : string =
    if i = 0 then path else Printf.sprintf "%s.%d" path i

  let bad_path (file : string) : string = file ^ ".bad"

  let log_path (path : string) : string = path ^ ".lineage"

  (* plain, best-effort append: not routed through Fsio by design *)
  let log_event (path : string) (fields : string list) : unit =
    try
      let oc =
        open_out_gen
          [ Open_append; Open_creat; Open_binary ]
          0o644 (log_path path)
      in
      output_string oc (String.concat "\t" (fields @ [ "." ]) ^ "\n");
      close_out_noerr oc
    with Sys_error _ -> ()

  (** Rollbacks journaled in [<path>.lineage] (the [R] records); torn
      lines (missing the "." terminator) are not counted. *)
  let logged_rollbacks (path : string) : int =
    match open_in_bin (log_path path) with
    | exception Sys_error _ -> 0
    | ic ->
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        let n = ref 0 in
        (try
           while true do
             let line = input_line ic in
             match String.split_on_char '\t' line with
             | "R" :: rest when rest <> [] && List.nth rest (List.length rest - 1) = "." ->
                 incr n
             | _ -> ()
           done
         with End_of_file -> ());
        !n

  (** Sweep stale [".tmp"] siblings of every ring slot (leftovers of an
      atomic write interrupted by a kill); returns how many were removed
      (also counted in {!Fsio.tmp_swept}). *)
  let sweep ?(keep = 3) (path : string) : int =
    let n = ref 0 in
    for i = 0 to max 0 (keep - 1) do
      if Fsio.sweep_tmp (ring_path path i) then incr n
    done;
    !n

  let healthy (agent : Agent.t) (state : Train_state.t option) : bool =
    Sentinel.params_finite (Agent.params agent)
    && (match state with
       | None -> true
       | Some st -> Sentinel.optim_finite st.Train_state.ts_optim)

  (** Reload [file] and prove it whole and finite. *)
  let healthy_file (file : string) : bool =
    match load_full file with
    | exception Bad_checkpoint _ -> false
    | agent, state -> healthy agent state

  let quarantine (path : string) (file : string) (reason : string) : unit =
    (try Sys.remove (bad_path file) with Sys_error _ -> ());
    (try Sys.rename file (bad_path file) with Sys_error _ -> ());
    log_event path [ "B"; Filename.basename file; String.escaped reason ]

  (* copy the current head into slot 1 (shifting older slots up) so the
     ring keeps the previous generation.  Copies, not renames: if the
     new head's save then fails, [path] must still hold the last good
     checkpoint. *)
  let retire_head (path : string) ~(keep : int) : unit =
    if keep > 1 && Sys.file_exists path then begin
      for i = keep - 2 downto 1 do
        let src = ring_path path i in
        if Sys.file_exists src then (
          try Sys.rename src (ring_path path (i + 1)) with Sys_error _ -> ())
      done;
      try
        let ic = open_in_bin path in
        let bytes =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let oc = open_out_bin (ring_path path 1) in
        output_string oc bytes;
        close_out oc
      with Sys_error _ | End_of_file -> ()
    end

  (** Save a new lineage head: retire the current head into the ring,
      write the new checkpoint (atomically, disk faults included), then
      run the post-save health check.  A head that fails the check is
      quarantined as [.bad] and {!Bad_checkpoint} is raised — the
      previous generation, now in [path.1], remains the newest good.
      Raises {!Fsio.Disk_fault} (head untouched) under an injected disk
      fault. *)
  let save ?(keep = 3) ?state (agent : Agent.t) (path : string) : unit =
    retire_head path ~keep;
    save ?state agent path;
    if not (healthy_file path) then begin
      quarantine path path "failed post-save health check";
      raise
        (Bad_checkpoint
           (Printf.sprintf "%s: failed post-save health check" path))
    end;
    match state with
    | Some (st : Train_state.t) ->
        log_event path
          [ "S"; string_of_int st.Train_state.ts_update;
            string_of_int st.ts_steps; string_of_int st.ts_rollbacks ]
    | None -> log_event path [ "S"; "-"; "-"; "-" ]

  (** Walk the ring newest-first and return the first checkpoint that
      loads and passes the health check, quarantining every sick file
      passed over.  [None] when the whole lineage is gone or bad. *)
  let newest_good ?(keep = 3) (path : string) :
      (string * Agent.t * Train_state.t option) option =
    let rec go i =
      if i >= max 1 keep then None
      else
        let file = ring_path path i in
        if not (Sys.file_exists file) then go (i + 1)
        else
          match load_full file with
          | exception Bad_checkpoint why ->
              quarantine path file why;
              go (i + 1)
          | agent, state ->
              if healthy agent state then begin
                log_event path [ "G"; Filename.basename file ];
                Some (file, agent, state)
              end
              else begin
                quarantine path file "failed health check";
                go (i + 1)
              end
    in
    go 0
end
