(** Proximal Policy Optimization for the vectorization contextual bandit.

    Episodes are one step long (paper Section 2.3): observe a loop's
    embedding, pick (VF, IF), receive the normalized execution-time
    improvement as reward. The update is the standard clipped-surrogate
    PPO loss with a value baseline and entropy bonus:

    {v L = -E[min(r A, clip(r, 1-eps, 1+eps) A)]
           + vf_coef * 0.5 (V - R)^2 - ent_coef * H v}

    with [r = pi(a|s)/pi_old(a|s)] and advantage [A = R - V_old]. *)

type hyper = {
  lr : float;
  batch_size : int;  (** environment steps per policy update *)
  minibatch : int;
  epochs : int;  (** SGD epochs over each batch *)
  clip : float;
  vf_coef : float;
  ent_coef : float;
}

let default_hyper =
  { lr = 5e-4; batch_size = 500; minibatch = 64; epochs = 4; clip = 0.2;
    vf_coef = 0.5; ent_coef = 0.01 }

(** The paper's headline hyperparameters (Section 4): lr 5e-5, batch 4000.
    Training with these takes proportionally longer; the sweep in the
    fig5 bench explores the grid around them. *)
let paper_hyper = { default_hyper with lr = 5e-5; batch_size = 4000 }

(** One environment sample: a loop, pre-encoded to vocabulary ids. *)
type sample = { s_id : int; s_ids : Embedding.Code2vec.ids array }

(** Per-update statistics, one record per policy update (the persisted
    form lives in {!Train_state} so checkpoints can carry the history). *)
type stats = Train_state.stats = {
  update : int;
  steps : int;  (** cumulative environment steps *)
  reward_mean : float;
  loss : float;
  entropy_mean : float;
}

type transition = {
  t_sample : sample;
  t_taken : Agent.taken;
  t_value : float;
  t_reward : float;
}

(** Train [agent] for [total_steps] environment steps.

    [reward sample_id action] is the environment: it compiles the program
    with the chosen pragma and returns the normalized improvement (or the
    -9 timeout penalty). Returns the per-update statistics history.

    [checkpoint_path] enables crash-safe training: a resumable checkpoint
    (agent + {!Train_state.t}) is written there after every
    [checkpoint_every] environment steps (0 = only at completion), and
    always once the step budget is reached.  [resume] continues a previous
    run: counters, statistics history and the optimizer (Adam moments) are
    restored, and [total_steps] is interpreted cumulatively — resuming a
    checkpoint taken at an update boundary reproduces the uninterrupted
    run exactly, because the agent's RNG state rides in the checkpoint.
    On resume the restored optimizer is used as-is ([hyper.lr] does not
    re-apply).

    [stop] is polled before each batch (graceful shutdown): when it
    returns [true], training ends at the current update boundary — the
    in-flight batch having completed in full — and the final checkpoint
    is written as usual.  Because updates are the checkpoint granularity,
    a stopped run resumed with [resume] reproduces the uninterrupted
    trajectory bit for bit.

    [batched] (default true) collects each rollout batch through
    {!Agent.forward_batch}: the RNG stream is consumed in the exact
    serial order (sample pick + action randomness per step, via
    {!Agent.draw}), then one batched forward evaluates every step and
    {!Agent.sample_with} applies the pre-drawn randomness — so actions,
    rewards, and checkpoint bytes are bit-identical to the scalar loop,
    just faster.  [rollout_jobs]/[rollout_map] shard that forward across
    an injected parallel map (see {!Agent.forward_batch}).

    {b Self-healing.}  After every update the numeric-health sentinels
    ({!Sentinel.check}) inspect the loss, entropy, approx-KL, reward
    scale, weights, gradients and optimizer moments.  A trip rolls the
    run back to the newest known-good state — the checkpoint lineage on
    disk when [checkpoint_path] is set ({!Checkpoint.Lineage}, ring depth
    [keep_checkpoints]), an in-memory snapshot of the last healthy update
    otherwise — quarantines a dump of the sick state as
    [<checkpoint_path>.bad], and applies the deterministic backoff
    ({!Sentinel.backoff}: halve LR, tighten clip), pure in
    (seed, rollback count) so recovery is identical at any pool size and
    across kill-and-resume.  More than [sentinel.max_rollbacks] trips
    raise {!Sentinel.Unrecoverable}.  A periodic checkpoint save that
    fails under a disk fault ({!Fsio.Disk_fault}) is absorbed — the
    previous checkpoint is intact and the next boundary retries — while
    the final save retries and then lets the typed error escape. *)
let train ?(hyper = default_hyper) ?(progress = fun (_ : stats) -> ())
    ?checkpoint_path ?(checkpoint_every = 0) ?(keep_checkpoints = 3)
    ?(sentinel = Sentinel.default)
    ?(stop = fun () -> false)
    ?(batched = true) ?(rollout_jobs = 1)
    ?(rollout_map = fun f xs -> Array.map f xs)
    ?(resume : Train_state.t option) (agent : Agent.t)
    ~(samples : sample array) ~(reward : int -> Spaces.action -> float)
    ~(total_steps : int) : stats list =
  let rng = agent.Agent.rng in
  let opt0, steps0, update0, history0, rollbacks0 =
    match resume with
    | Some st ->
        (st.Train_state.ts_optim, st.Train_state.ts_steps,
         st.Train_state.ts_update, List.rev st.Train_state.ts_history,
         st.Train_state.ts_rollbacks)
    | None -> (Nn.Optim.adam ~lr:hyper.lr (), 0, 0, [], 0)
  in
  let opt = ref opt0 in
  let history = ref history0 in
  let steps_done = ref steps0 in
  let update = ref update0 in
  let rollbacks = ref rollbacks0 in
  let last_checkpoint = ref steps0 in
  (* the effective clip is a pure function of the persisted rollback
     count, so a resumed run reconstructs the backoff it was under *)
  let seed = sentinel.Sentinel.backoff_seed in
  let clip =
    ref
      (hyper.clip
      *. (Sentinel.backoff ~seed ~rollbacks:rollbacks0).Sentinel.clip_scale)
  in
  (* stale temp files from an atomic write interrupted by a kill are
     swept before anything else: they are dead bytes, never replayed *)
  (match checkpoint_path with
  | Some path -> ignore (Checkpoint.Lineage.sweep ~keep:keep_checkpoints path)
  | None -> ());
  let mem_state () =
    { Train_state.ts_steps = !steps_done; ts_update = !update;
      ts_history = List.rev !history; ts_optim = !opt;
      ts_rollbacks = !rollbacks }
  in
  (* in-memory last-known-good snapshot: the rollback source while no
     disk lineage exists (checkpointing disabled, or no periodic save
     has happened yet) *)
  let snapshot = ref (Marshal.to_string (agent, mem_state ()) []) in
  let take_snapshot () =
    snapshot := Marshal.to_string (agent, mem_state ()) []
  in
  let save_checkpoint () =
    match checkpoint_path with
    | None -> ()
    | Some path ->
        last_checkpoint := !steps_done;
        Checkpoint.Lineage.save ~keep:keep_checkpoints
          ~state:(mem_state ()) agent path
  in
  (* ---- sentinel recovery ---- *)
  let rollback (trip : Sentinel.trip) : unit =
    Sentinel.record_trip ();
    let r = !rollbacks + 1 in
    if r > sentinel.Sentinel.max_rollbacks then
      raise
        (Sentinel.Unrecoverable
           (Printf.sprintf "%s after %d rollbacks"
              (Sentinel.describe trip) !rollbacks));
    (* quarantine a post-mortem dump of the sick state (best-effort,
       plain write: the disk-fault layer must not block the autopsy) *)
    (match checkpoint_path with
    | Some path -> (
        try
          let oc = open_out_bin (path ^ ".bad") in
          output_string oc (Checkpoint.compose ~state:(mem_state ()) agent);
          close_out_noerr oc
        with Sys_error _ -> ())
    | None -> ());
    (* restore the newest known-good state.  With a checkpoint path the
       disk lineage is authoritative — it is the only state a killed run
       can resume from, so using it keeps the recovered trajectory
       identical across kill-and-resume; the in-memory snapshot covers
       runs without one (and the window before the first save). *)
    let restored : Train_state.t =
      let from_memory () =
        let (src : Agent.t), (st : Train_state.t) =
          Marshal.from_string !snapshot 0
        in
        Agent.restore ~src agent;
        st
      in
      match checkpoint_path with
      | None -> from_memory ()
      | Some path -> (
          match
            Checkpoint.Lineage.newest_good ~keep:keep_checkpoints path
          with
          | Some (_, src, Some st) ->
              Agent.restore ~src agent;
              st
          | Some (_, _, None) | None -> from_memory ())
    in
    steps_done := restored.Train_state.ts_steps;
    update := restored.Train_state.ts_update;
    history := List.rev restored.Train_state.ts_history;
    last_checkpoint := restored.Train_state.ts_steps;
    rollbacks := r;
    (* deterministic backoff, recomputed from the base hyperparameters
       and the cumulative rollback count *)
    let prev = Sentinel.backoff ~seed ~rollbacks:restored.ts_rollbacks in
    let next = Sentinel.backoff ~seed ~rollbacks:r in
    let base_lr =
      Nn.Optim.lr restored.Train_state.ts_optim /. prev.Sentinel.lr_scale
    in
    opt :=
      Nn.Optim.with_lr restored.Train_state.ts_optim
        (base_lr *. next.Sentinel.lr_scale);
    clip := hyper.clip *. next.Sentinel.clip_scale;
    Sentinel.record_rollback ();
    (match checkpoint_path with
    | Some path ->
        Checkpoint.Lineage.log_event path
          [ "R"; string_of_int !update; string_of_int !steps_done;
            string_of_int r; String.escaped (Sentinel.describe trip) ]
    | None -> ());
    take_snapshot ()
  in
  while !steps_done < total_steps && not (stop ()) do
    (* ---- collect a batch under the current (frozen) policy ---- *)
    let n = min hyper.batch_size (total_steps - !steps_done) in
    let batch =
      if batched then begin
        (* consume the RNG exactly as the scalar loop: per step, the
           sample pick then that step's action randomness *)
        let picks =
          Array.init n (fun _ ->
              let s = samples.(Nn.Rng.int rng (Array.length samples)) in
              let d = Agent.draw agent in
              (s, d))
        in
        let outs =
          Agent.forward_batch ~jobs:rollout_jobs ~map:rollout_map agent
            (Array.map (fun ((s : sample), _) -> s.s_ids) picks)
        in
        Array.mapi
          (fun i (s, d) ->
            let pi, v = outs.(i) in
            let taken = Agent.sample_with agent ~pi d in
            let r = reward s.s_id taken.Agent.act in
            { t_sample = s; t_taken = taken; t_value = v; t_reward = r })
          picks
      end
      else
        Array.init n (fun _ ->
            let s = samples.(Nn.Rng.int rng (Array.length samples)) in
            let f = Agent.forward agent s.s_ids in
            let taken = Agent.sample agent f in
            let r = reward s.s_id taken.Agent.act in
            { t_sample = s; t_taken = taken; t_value = f.Agent.v;
              t_reward = r })
    in
    steps_done := !steps_done + n;
    (* ---- PPO epochs ---- *)
    let clip_now = !clip in
    let poison =
      sentinel.Sentinel.inject_nan ~update:(!update + 1)
        ~rollbacks:!rollbacks
    in
    let poisoned = ref false in
    let loss_acc = ref 0.0 and loss_count = ref 0 in
    let ent_acc = ref 0.0 in
    let kl_acc = ref 0.0 in
    for _epoch = 1 to hyper.epochs do
      Nn.Rng.shuffle rng batch;
      let i = ref 0 in
      while !i < n do
        let mb_end = min n (!i + hyper.minibatch) in
        let mb_size = mb_end - !i in
        Agent.zero_grad agent;
        for k = !i to mb_end - 1 do
          let tr = batch.(k) in
          let f = Agent.forward agent tr.t_sample.s_ids in
          let lp = Agent.logp agent f tr.t_taken in
          let ratio = exp (lp -. tr.t_taken.Agent.logp) in
          let adv = tr.t_reward -. tr.t_value in
          let unclipped_active =
            if adv >= 0.0 then ratio < 1.0 +. clip_now
            else ratio > 1.0 -. clip_now
          in
          (* dL/dlogp for L = -min(r A, clip(r) A) *)
          let dlogp = if unclipped_active then -.(ratio *. adv) else 0.0 in
          let dpi =
            Agent.dpi_of agent f tr.t_taken ~dlogp_coef:dlogp
              ~dent_coef:(-.hyper.ent_coef)
          in
          let dv = hyper.vf_coef *. (f.Agent.v -. tr.t_reward) in
          Agent.backward agent f ~dpi ~dv;
          (* bookkeeping *)
          let surr =
            let clipped =
              max (1.0 -. clip_now) (min (1.0 +. clip_now) ratio)
            in
            min (ratio *. adv) (clipped *. adv)
          in
          let ent = Agent.entropy agent f in
          loss_acc :=
            !loss_acc
            +. (-.surr)
            +. (hyper.vf_coef *. 0.5 *. ((f.Agent.v -. tr.t_reward) ** 2.0))
            -. (hyper.ent_coef *. ent);
          ent_acc := !ent_acc +. ent;
          (* approx-KL between the rollout policy and the current one,
             the standard E[logp_old - logp_new] estimator *)
          kl_acc := !kl_acc +. (tr.t_taken.Agent.logp -. lp);
          incr loss_count
        done;
        if poison && not !poisoned then begin
          (* the injected numeric fault: one gradient cell goes NaN just
             before the optimizer step, exactly how a real bad update
             poisons the moments and then every weight *)
          poisoned := true;
          match Agent.params agent with
          | (_, g) :: _ when Array.length g > 0 -> g.(0) <- Float.nan
          | _ -> ()
        end;
        Nn.Optim.step ~scale:(float_of_int mb_size) !opt
          (Agent.params agent);
        i := mb_end
      done
    done;
    incr update;
    let reward_mean =
      Array.fold_left (fun acc tr -> acc +. tr.t_reward) 0.0 batch
      /. float_of_int n
    in
    let st =
      { update = !update; steps = !steps_done; reward_mean;
        loss = !loss_acc /. float_of_int (max 1 !loss_count);
        entropy_mean = !ent_acc /. float_of_int (max 1 !loss_count) }
    in
    let approx_kl = !kl_acc /. float_of_int (max 1 !loss_count) in
    (* ---- sentinels: admit the update only if it is healthy ---- *)
    match
      Sentinel.check sentinel ~params:(Agent.params agent) ~optim:!opt
        ~loss:st.loss ~entropy:st.entropy_mean ~reward_mean:st.reward_mean
        ~approx_kl
    with
    | Some trip -> rollback trip
    | None -> (
        progress st;
        history := st :: !history;
        take_snapshot ();
        if
          checkpoint_every > 0
          && !steps_done - !last_checkpoint >= checkpoint_every
          && !steps_done < total_steps
        then
          try save_checkpoint () with
          | Fsio.Disk_fault _ ->
              (* fail closed: the previous checkpoint is intact; the
                 next boundary retries with a fresh attempt index *)
              Fsio.record_write_error ()
          | Checkpoint.Bad_checkpoint _ ->
              (* the post-save health check refuted a state the in-loop
                 sentinels passed: treat it as a trip *)
              rollback (Sentinel.Non_finite "checkpoint health check"))
  done;
  (* the final checkpoint must land: retry through transient disk
     faults, then let the typed error escape *)
  let rec final_save attempt =
    try save_checkpoint ()
    with Fsio.Disk_fault _ when attempt < 4 ->
      Fsio.record_write_error ();
      final_save (attempt + 1)
  in
  final_save 0;
  List.rev !history

(** Greedy evaluation: mean reward of the deterministic policy over
    [samples].  One batched forward for the whole corpus; per-sample
    actions (and therefore rewards) are identical to scalar
    {!Agent.predict}. *)
let evaluate (agent : Agent.t) ~(samples : sample array)
    ~(reward : int -> Spaces.action -> float) : float =
  let acts =
    Agent.predict_batch agent (Array.map (fun s -> s.s_ids) samples)
  in
  let total = ref 0.0 in
  Array.iteri
    (fun i s -> total := !total +. reward s.s_id acts.(i))
    samples;
  !total /. float_of_int (max 1 (Array.length samples))
