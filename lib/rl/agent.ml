(** The policy/value network: code2vec embedding -> FCNN trunk -> policy and
    value heads, differentiable end to end.

    The trunk defaults to the paper's 64x64 tanh network. The policy head's
    shape depends on the action-space encoding (see {!Spaces}); continuous
    encodings carry a state-independent learnable log-std, as RLlib's PPO
    does. *)

type t = {
  space : Spaces.kind;
  c2v : Embedding.Code2vec.t;
  trunk : Nn.Mlp.t;
  head_pi : Nn.Dense.t;
  head_v : Nn.Dense.t;
  log_std : Nn.Tensor.vec;
  g_log_std : Nn.Tensor.vec;
  rng : Nn.Rng.t;
}

let pi_dim = function
  | Spaces.Discrete -> Spaces.n_vf + Spaces.n_if
  | Spaces.Continuous1 -> 1
  | Spaces.Continuous2 -> 2

let create ?(hidden = [ 64; 64 ]) ?(c2v_cfg = Embedding.Code2vec.default_config)
    ~(space : Spaces.kind) (rng : Nn.Rng.t) : t =
  let c2v = Embedding.Code2vec.create ~cfg:c2v_cfg rng in
  let d_code = c2v_cfg.Embedding.Code2vec.d_code in
  let h_out = match List.rev hidden with h :: _ -> h | [] -> d_code in
  let trunk = Nn.Mlp.create rng ~dims:(d_code :: hidden) ~act:Nn.Mlp.Tanh in
  let n_std = match space with Spaces.Continuous1 -> 1 | Spaces.Continuous2 -> 2 | Spaces.Discrete -> 0 in
  {
    space;
    c2v;
    trunk;
    head_pi = Nn.Dense.create rng ~in_dim:h_out ~out_dim:(pi_dim space);
    head_v = Nn.Dense.create rng ~in_dim:h_out ~out_dim:1;
    log_std = Array.make (max 1 n_std) 0.0;
    g_log_std = Array.make (max 1 n_std) 0.0;
    rng;
  }

(* ------------------------------------------------------------------ *)
(* Forward                                                              *)
(* ------------------------------------------------------------------ *)

type fwd = {
  emb : Embedding.Code2vec.cache;
  trunk_cache : Nn.Mlp.cache;
  trunk_out : Nn.Tensor.vec;  (** tanh applied *)
  pi : Nn.Tensor.vec;
  v : float;
}

let forward (t : t) (ids : Embedding.Code2vec.ids array) : fwd =
  let emb = Embedding.Code2vec.forward_ids t.c2v ids in
  let trunk_cache = Nn.Mlp.forward_cached t.trunk emb.Embedding.Code2vec.code in
  let trunk_out = Nn.Tensor.tanh_fwd trunk_cache.Nn.Mlp.output in
  let pi = Nn.Dense.forward t.head_pi trunk_out in
  let v = (Nn.Dense.forward t.head_v trunk_out).(0) in
  { emb; trunk_cache; trunk_out; pi; v }

(* ------------------------------------------------------------------ *)
(* Batched inference forward                                            *)
(* ------------------------------------------------------------------ *)

(* one arena-backed batched forward over a chunk of snippets: embed the
   whole chunk (Code2vec.forward_batch), run the trunk + heads as
   matrix-matrix kernels, and only materialize the per-snippet policy
   logits at the boundary.  Bit-identical per row to [forward]. *)
let forward_chunk (t : t) (idss : Embedding.Code2vec.ids array array) :
    (Nn.Tensor.vec * float) array =
  let arena = Nn.Batch.domain_arena () in
  let n = Array.length idss in
  let codes = Embedding.Code2vec.forward_batch t.c2v arena idss in
  let trunk = Nn.Mlp.forward_rows t.trunk arena ~x:codes ~rows:n in
  let h_out = t.head_pi.Nn.Dense.in_dim in
  Nn.Batch.tanh_inplace trunk ~len:(n * h_out);
  let pd = t.head_pi.Nn.Dense.out_dim in
  let pi = Nn.Batch.slot arena "agent.pi" (n * pd) in
  Nn.Dense.forward_rows t.head_pi ~x:trunk ~y:pi ~rows:n;
  let v = Nn.Batch.slot arena "agent.v" (max 1 n) in
  Nn.Dense.forward_rows t.head_v ~x:trunk ~y:v ~rows:n;
  Array.init n (fun i ->
      (Nn.Batch.row_to_vec pi ~off:(i * pd) ~len:pd, Nn.Batch.get v i))

(* shard [0, n) into [jobs] contiguous chunks and run [f] per chunk via
   [map] — rows are computed independently, so any shard count produces
   the same bits *)
let sharded ~(jobs : int) ~map (f : 'a array -> 'b array) (xs : 'a array) :
    'b array =
  let n = Array.length xs in
  if jobs <= 1 || n < 2 then f xs
  else begin
    let chunk = (n + jobs - 1) / jobs in
    let nchunks = (n + chunk - 1) / chunk in
    let parts =
      map
        (fun ci ->
          f (Array.sub xs (ci * chunk) (min chunk (n - (ci * chunk)))))
        (Array.init nchunks Fun.id)
    in
    Array.concat (Array.to_list parts)
  end

(** Batched {!forward} for inference: per-snippet (policy logits, value),
    each bit-identical to the scalar [forward].  [jobs]/[map] inject a
    parallel map (e.g. [Parpool.map], which this library cannot depend
    on) to shard the batch across domains; the default is serial. *)
let forward_batch ?(jobs = 1) ?(map = fun f xs -> Array.map f xs) (t : t)
    (idss : Embedding.Code2vec.ids array array) :
    (Nn.Tensor.vec * float) array =
  sharded ~jobs ~map (forward_chunk t) idss

(* ------------------------------------------------------------------ *)
(* Distributions                                                        *)
(* ------------------------------------------------------------------ *)

(** An action together with the raw sample needed to re-evaluate its
    log-probability under an updated policy. *)
type taken = { act : Spaces.action; raw : float array; logp : float }

let split_logits (pi : Nn.Tensor.vec) =
  (Array.sub pi 0 Spaces.n_vf, Array.sub pi Spaces.n_vf Spaces.n_if)

let gauss_logp ~mu ~log_std x =
  let sigma = exp log_std in
  let z = (x -. mu) /. sigma in
  (-0.5 *. z *. z) -. log_std -. (0.5 *. log (2.0 *. Float.pi))

(** The RNG consumption of one {!sample}, drawn eagerly in the serial
    stream order.  Batched rollouts pick a sample and [draw] per step —
    consuming the stream exactly as the scalar loop would — then run one
    whole-batch forward and apply each draw with {!sample_with}, so the
    checkpointed RNG state and every action stay bit-identical. *)
type draw =
  | Uniform2 of float * float  (** Discrete: one uniform per factor *)
  | Normals of float array  (** Continuous: one standard normal per dim *)

let draw (t : t) : draw =
  match t.space with
  | Spaces.Discrete ->
      let u_vf = Nn.Rng.float t.rng in
      let u_if = Nn.Rng.float t.rng in
      Uniform2 (u_vf, u_if)
  | Spaces.Continuous1 -> Normals [| Nn.Rng.normal t.rng |]
  | Spaces.Continuous2 ->
      let n0 = Nn.Rng.normal t.rng in
      let n1 = Nn.Rng.normal t.rng in
      Normals [| n0; n1 |]

(** {!sample} with the randomness supplied up front ([pi] is the policy
    head output for the snippet). *)
let sample_with (t : t) ~(pi : Nn.Tensor.vec) (d : draw) : taken =
  match (t.space, d) with
  | Spaces.Discrete, Uniform2 (u_vf, u_if) ->
      let zv, zi = split_logits pi in
      let pv = Nn.Tensor.softmax zv and pi_ = Nn.Tensor.softmax zi in
      let vf_idx = Nn.Tensor.sample_u ~u:u_vf pv in
      let if_idx = Nn.Tensor.sample_u ~u:u_if pi_ in
      let lv = Nn.Tensor.log_softmax zv and li = Nn.Tensor.log_softmax zi in
      { act = { Spaces.vf_idx; if_idx }; raw = [||];
        logp = lv.(vf_idx) +. li.(if_idx) }
  | Spaces.Continuous1, Normals ns ->
      let mu = pi.(0) in
      let x = mu +. (exp t.log_std.(0) *. ns.(0)) in
      { act = Spaces.of_flat (int_of_float (Float.round x));
        raw = [| x |];
        logp = gauss_logp ~mu ~log_std:t.log_std.(0) x }
  | Spaces.Continuous2, Normals ns ->
      let x0 = pi.(0) +. (exp t.log_std.(0) *. ns.(0)) in
      let x1 = pi.(1) +. (exp t.log_std.(1) *. ns.(1)) in
      { act =
          { Spaces.vf_idx = Spaces.clamp_idx ~n:Spaces.n_vf x0;
            if_idx = Spaces.clamp_idx ~n:Spaces.n_if x1 };
        raw = [| x0; x1 |];
        logp =
          gauss_logp ~mu:pi.(0) ~log_std:t.log_std.(0) x0
          +. gauss_logp ~mu:pi.(1) ~log_std:t.log_std.(1) x1 }
  | _ -> invalid_arg "Agent.sample_with: draw does not match the action space"

(** Sample an action from the policy output. *)
let sample (t : t) (f : fwd) : taken = sample_with t ~pi:f.pi (draw t)

(** Log-probability of a previously-taken action under the current policy. *)
let logp (t : t) (f : fwd) (tk : taken) : float =
  match t.space with
  | Spaces.Discrete ->
      let zv, zi = split_logits f.pi in
      let lv = Nn.Tensor.log_softmax zv and li = Nn.Tensor.log_softmax zi in
      lv.(tk.act.Spaces.vf_idx) +. li.(tk.act.Spaces.if_idx)
  | Spaces.Continuous1 ->
      gauss_logp ~mu:f.pi.(0) ~log_std:t.log_std.(0) tk.raw.(0)
  | Spaces.Continuous2 ->
      gauss_logp ~mu:f.pi.(0) ~log_std:t.log_std.(0) tk.raw.(0)
      +. gauss_logp ~mu:f.pi.(1) ~log_std:t.log_std.(1) tk.raw.(1)

let entropy (t : t) (f : fwd) : float =
  match t.space with
  | Spaces.Discrete ->
      let h z =
        let p = Nn.Tensor.softmax z and lp = Nn.Tensor.log_softmax z in
        let acc = ref 0.0 in
        Array.iteri (fun i pi_ -> acc := !acc -. (pi_ *. lp.(i))) p;
        !acc
      in
      let zv, zi = split_logits f.pi in
      h zv +. h zi
  | Spaces.Continuous1 ->
      0.5 *. (1.0 +. log (2.0 *. Float.pi)) +. t.log_std.(0)
  | Spaces.Continuous2 ->
      (1.0 +. log (2.0 *. Float.pi)) +. t.log_std.(0) +. t.log_std.(1)

(** Deterministic (inference-time) action. *)
let predict (t : t) (ids : Embedding.Code2vec.ids array) : Spaces.action =
  let f = forward t ids in
  match t.space with
  | Spaces.Discrete ->
      let zv, zi = split_logits f.pi in
      { Spaces.vf_idx = Nn.Tensor.argmax zv; if_idx = Nn.Tensor.argmax zi }
  | Spaces.Continuous1 -> Spaces.of_flat (int_of_float (Float.round f.pi.(0)))
  | Spaces.Continuous2 ->
      { Spaces.vf_idx = Spaces.clamp_idx ~n:Spaces.n_vf f.pi.(0);
        if_idx = Spaces.clamp_idx ~n:Spaces.n_if f.pi.(1) }

(* first strict maximum over a buffer segment — [Tensor.argmax]'s rule *)
let argmax_seg (b : Nn.Batch.buf) ~(off : int) ~(len : int) : int =
  let best = ref 0 in
  for i = 0 to len - 1 do
    if Nn.Batch.get b (off + i) > Nn.Batch.get b (off + !best) then best := i
  done;
  !best

(* batched greedy decisions over one chunk: the forward kernels of
   [forward_chunk] minus the value head (the action never depends on it),
   decisions read straight off the logits buffer *)
let predict_chunk (t : t) (idss : Embedding.Code2vec.ids array array) :
    Spaces.action array =
  let arena = Nn.Batch.domain_arena () in
  let n = Array.length idss in
  let codes = Embedding.Code2vec.forward_batch t.c2v arena idss in
  let trunk = Nn.Mlp.forward_rows t.trunk arena ~x:codes ~rows:n in
  let h_out = t.head_pi.Nn.Dense.in_dim in
  Nn.Batch.tanh_inplace trunk ~len:(n * h_out);
  let pd = t.head_pi.Nn.Dense.out_dim in
  let pi = Nn.Batch.slot arena "agent.pi" (n * pd) in
  Nn.Dense.forward_rows t.head_pi ~x:trunk ~y:pi ~rows:n;
  Array.init n (fun i ->
      let off = i * pd in
      match t.space with
      | Spaces.Discrete ->
          { Spaces.vf_idx = argmax_seg pi ~off ~len:Spaces.n_vf;
            if_idx = argmax_seg pi ~off:(off + Spaces.n_vf) ~len:Spaces.n_if }
      | Spaces.Continuous1 ->
          Spaces.of_flat (int_of_float (Float.round (Nn.Batch.get pi off)))
      | Spaces.Continuous2 ->
          { Spaces.vf_idx =
              Spaces.clamp_idx ~n:Spaces.n_vf (Nn.Batch.get pi off);
            if_idx =
              Spaces.clamp_idx ~n:Spaces.n_if (Nn.Batch.get pi (off + 1)) })

(** Batched {!predict}: one action per snippet, each identical to the
    scalar call; [jobs]/[map] as in {!forward_batch}. *)
let predict_batch ?(jobs = 1) ?(map = fun f xs -> Array.map f xs) (t : t)
    (idss : Embedding.Code2vec.ids array array) : Spaces.action array =
  sharded ~jobs ~map (predict_chunk t) idss

(* ------------------------------------------------------------------ *)
(* Backward                                                             *)
(* ------------------------------------------------------------------ *)

(** Gradient of the policy head output for
    [dlogp_coef * logp + dent_coef * entropy]. *)
let dpi_of (t : t) (f : fwd) (tk : taken) ~(dlogp_coef : float)
    ~(dent_coef : float) : Nn.Tensor.vec =
  match t.space with
  | Spaces.Discrete ->
      let zv, zi = split_logits f.pi in
      let grad z idx =
        let p = Nn.Tensor.softmax z in
        let lp = Nn.Tensor.log_softmax z in
        let h = ref 0.0 in
        Array.iteri (fun i pi_ -> h := !h -. (pi_ *. lp.(i))) p;
        Array.init (Array.length z) (fun i ->
            let onehot = if i = idx then 1.0 else 0.0 in
            (dlogp_coef *. (onehot -. p.(i)))
            +. (dent_coef *. (-.p.(i)) *. (lp.(i) +. !h)))
      in
      Array.append (grad zv tk.act.Spaces.vf_idx) (grad zi tk.act.Spaces.if_idx)
  | Spaces.Continuous1 ->
      let sigma = exp t.log_std.(0) in
      let z = (tk.raw.(0) -. f.pi.(0)) /. sigma in
      t.g_log_std.(0) <-
        t.g_log_std.(0)
        +. (dlogp_coef *. ((z *. z) -. 1.0))
        +. dent_coef;
      [| dlogp_coef *. z /. sigma |]
  | Spaces.Continuous2 ->
      let g k =
        let sigma = exp t.log_std.(k) in
        let z = (tk.raw.(k) -. f.pi.(k)) /. sigma in
        t.g_log_std.(k) <-
          t.g_log_std.(k)
          +. (dlogp_coef *. ((z *. z) -. 1.0))
          +. dent_coef;
        dlogp_coef *. z /. sigma
      in
      [| g 0; g 1 |]

(* dpi_of is pure chain rule: it returns
   dlogp_coef * dlogp/dpi + dent_coef * dentropy/dpi and accumulates the
   matching log-std terms; the caller chooses the loss sign convention. *)

(** Accumulate gradients for one sample. [dpi] is dLoss/d(policy head
    output) and [dv] is dLoss/d(value). *)
let backward (t : t) (f : fwd) ~(dpi : Nn.Tensor.vec) ~(dv : float) : unit =
  let d_trunk = Nn.Tensor.vec_create (Array.length f.trunk_out) in
  let d1 = Nn.Dense.backward t.head_pi ~x:f.trunk_out ~dy:dpi in
  Nn.Tensor.add_inplace d_trunk d1;
  let d2 = Nn.Dense.backward t.head_v ~x:f.trunk_out ~dy:[| dv |] in
  Nn.Tensor.add_inplace d_trunk d2;
  let d_raw = Nn.Tensor.tanh_bwd f.trunk_out d_trunk in
  let d_code = Nn.Mlp.backward t.trunk f.trunk_cache ~dout:d_raw in
  Embedding.Code2vec.backward t.c2v f.emb ~dcode:d_code

let params (t : t) : Nn.Optim.params =
  Embedding.Code2vec.params t.c2v
  @ Nn.Mlp.params t.trunk
  @ Nn.Dense.params t.head_pi
  @ Nn.Dense.params t.head_v
  @ (if t.space = Spaces.Discrete then [] else [ (t.log_std, t.g_log_std) ])

(** Overwrite [dst]'s learnable state in place from [src]: every
    parameter and gradient array and the RNG state.  [src] and [dst]
    must share a shape (e.g. [src] was unmarshalled from a snapshot of
    [dst]).  This is the sentinels' rollback primitive: training mutates
    the caller's agent record, so restoring a known-good snapshot must
    write {e into} that record rather than produce a fresh one. *)
let restore ~(src : t) (dst : t) : unit =
  List.iter2
    (fun (pd, gd) (ps, gs) ->
      Array.blit ps 0 pd 0 (Array.length pd);
      Array.blit gs 0 gd 0 (Array.length gd))
    (params dst) (params src);
  (* log_std rides in params only for continuous spaces; the discrete
     agent never mutates it, so params covers everything that moves *)
  dst.rng.Nn.Rng.state <- src.rng.Nn.Rng.state

let zero_grad (t : t) : unit =
  Embedding.Code2vec.zero_grad t.c2v;
  Nn.Mlp.zero_grad t.trunk;
  Nn.Dense.zero_grad t.head_pi;
  Nn.Dense.zero_grad t.head_v;
  Nn.Tensor.fill_zero t.g_log_std
