(** Resumable training state.

    Long training runs (hours of measured rewards, paper Section 4) must
    survive interruption: a checkpoint that only holds the policy weights
    restarts the optimizer and the statistics from scratch, so a resumed
    run diverges from an uninterrupted one.  This record carries
    everything {!Ppo.train} needs to continue exactly where it stopped —
    cumulative step and update counters, the per-update statistics
    history, and the optimizer (Adam moments included).  The agent itself
    (weights and its RNG state) is checkpointed alongside by
    {!Checkpoint}, so kill-and-resume at an update boundary reproduces
    the uninterrupted trajectory bit for bit.  Graceful shutdown
    ({!Ppo.train}'s [?stop] hook) always lands on an update boundary:
    the state flushed by an interrupted run is exactly the state an
    uninterrupted run passed through. *)

(** Per-update statistics, one record per policy update (re-exported as
    [Ppo.stats]). *)
type stats = {
  update : int;
  steps : int;  (** cumulative environment steps *)
  reward_mean : float;
  loss : float;
  entropy_mean : float;
}

type t = {
  ts_steps : int;  (** environment steps completed *)
  ts_update : int;  (** policy updates completed *)
  ts_history : stats list;  (** chronological, oldest first *)
  ts_optim : Nn.Optim.t;  (** optimizer with accumulated moments *)
  ts_rollbacks : int;
      (** sentinel rollbacks performed so far ({!Sentinel}); persisting
          the count makes the deterministic backoff schedule — and the
          fault keys derived from it — survive kill-and-resume *)
}
