(** Optimizers over flat (param, grad) pairs: SGD and Adam. *)

type params = (Tensor.vec * Tensor.vec) list

type t =
  | Sgd of { lr : float }
  | Adam of {
      lr : float;
      beta1 : float;
      beta2 : float;
      eps : float;
      mutable step : int;
      mutable state : (Tensor.vec * Tensor.vec) list option;
          (** (m, v) per param, lazily matched to the param list *)
    }

let sgd ~lr = Sgd { lr }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr () =
  Adam { lr; beta1; beta2; eps; step = 0; state = None }

let lr = function Sgd { lr } -> lr | Adam { lr; _ } -> lr

(** The same optimizer with its learning rate replaced; Adam keeps its
    step count and accumulated moments (shared, not copied).  Used by the
    training sentinels' rollback backoff, which halves the rate without
    restarting the moment estimates. *)
let with_lr (t : t) (lr : float) : t =
  match t with
  | Sgd _ -> Sgd { lr }
  | Adam a -> Adam { a with lr }

exception Bad_state of string
(** Adam's lazily-created moment vectors are matched to the parameter
    list purely by position; if the shapes no longer line up (a layer was
    added, removed or resized after the optimizer state was created —
    e.g. a resumed checkpoint across a model edit), continuing would
    silently corrupt the moments.  Surface it like a bad checkpoint
    instead. *)

(* the moment vectors must pair 1:1 with the params, by count and by
   length — a mismatch means the model changed under the optimizer *)
let check_state (ps : params) (state : (Tensor.vec * Tensor.vec) list) : unit =
  let np = List.length ps and ns = List.length state in
  if np <> ns then
    raise
      (Bad_state
         (Printf.sprintf
            "Optim.step: %d parameter tensors but %d Adam moment slots — \
             the model's shape changed after the optimizer state was \
             created (resumed checkpoint across a layer edit?)"
            np ns));
  List.iteri
    (fun i ((p, _), (m, _)) ->
      if Array.length p <> Array.length m then
        raise
          (Bad_state
             (Printf.sprintf
                "Optim.step: parameter %d has %d elements but its Adam \
                 moments have %d — the model's shape changed after the \
                 optimizer state was created (resumed checkpoint across a \
                 layer edit?)"
                i (Array.length p) (Array.length m))))
    (List.combine ps state)

(** One update step. [scale] divides gradients (e.g. by batch size). *)
let step ?(scale = 1.0) (t : t) (ps : params) : unit =
  match t with
  | Sgd { lr } ->
      List.iter
        (fun (p, g) ->
          for i = 0 to Array.length p - 1 do
            p.(i) <- p.(i) -. (lr *. g.(i) /. scale)
          done)
        ps
  | Adam a ->
      let state =
        match a.state with
        | Some s -> s
        | None ->
            let s =
              List.map
                (fun (p, _) ->
                  (Tensor.vec_create (Array.length p),
                   Tensor.vec_create (Array.length p)))
                ps
            in
            a.state <- Some s;
            s
      in
      check_state ps state;
      a.step <- a.step + 1;
      let t_ = float_of_int a.step in
      let bc1 = 1.0 -. (a.beta1 ** t_) and bc2 = 1.0 -. (a.beta2 ** t_) in
      List.iter2
        (fun (p, g) (m, v) ->
          for i = 0 to Array.length p - 1 do
            let gi = g.(i) /. scale in
            m.(i) <- (a.beta1 *. m.(i)) +. ((1.0 -. a.beta1) *. gi);
            v.(i) <- (a.beta2 *. v.(i)) +. ((1.0 -. a.beta2) *. gi *. gi);
            let mhat = m.(i) /. bc1 and vhat = v.(i) /. bc2 in
            p.(i) <- p.(i) -. (a.lr *. mhat /. (sqrt vhat +. a.eps))
          done)
        ps state

let zero_grads (ps : params) : unit =
  List.iter (fun (_, g) -> Tensor.fill_zero g) ps
