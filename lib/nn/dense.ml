(** A fully-connected layer [y = W x + b] with gradient accumulation.

    Layers are stateless with respect to inputs: [forward] returns the
    output and [backward] takes the cached input back, so one layer object
    can serve many samples within a batch (gradients accumulate until
    [zero_grad]). *)

type t = {
  w : Tensor.mat;
  b : Tensor.vec;
  gw : Tensor.mat;
  gb : Tensor.vec;
  in_dim : int;
  out_dim : int;
}

let create (rng : Rng.t) ~in_dim ~out_dim : t =
  {
    w = Tensor.mat_xavier rng out_dim in_dim;
    b = Tensor.vec_create out_dim;
    gw = Tensor.mat_create out_dim in_dim;
    gb = Tensor.vec_create out_dim;
    in_dim;
    out_dim;
  }

let forward (l : t) (x : Tensor.vec) : Tensor.vec =
  let y = Tensor.vec_create l.out_dim in
  Tensor.gemv l.w x y;
  Tensor.add_inplace y l.b;
  y

(** Batched {!forward} over [rows] row-major rows of [x] into [y]
    (preallocated scratch; see {!Batch}).  Bit-identical per row to
    {!forward}. *)
let forward_rows (l : t) ~(x : Batch.buf) ~(y : Batch.buf) ~(rows : int) :
    unit =
  Batch.dense_rows ~w:l.w ~b:l.b ~x ~y ~rows

(** Accumulate gradients for one sample; returns dL/dx. *)
let backward (l : t) ~(x : Tensor.vec) ~(dy : Tensor.vec) : Tensor.vec =
  Tensor.ger l.gw ~alpha:1.0 dy x;
  Tensor.add_inplace l.gb dy;
  let dx = Tensor.vec_create l.in_dim in
  Tensor.gemv_t l.w dy dx;
  dx

let zero_grad (l : t) : unit =
  Tensor.mat_fill_zero l.gw;
  Tensor.fill_zero l.gb

(** Parameters and their gradients, flattened for the optimizer. *)
let params (l : t) : (Tensor.vec * Tensor.vec) list =
  [ (l.w.Tensor.data, l.gw.Tensor.data); (l.b, l.gb) ]

let copy (l : t) : t =
  { l with w = Tensor.mat_copy l.w; b = Tensor.vec_copy l.b;
    gw = Tensor.mat_copy l.gw; gb = Tensor.vec_copy l.gb }
