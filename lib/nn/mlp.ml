(** A multi-layer perceptron with tanh (or relu) hidden activations.

    [forward_cached] returns the per-layer activations needed by
    [backward]; the paper's policy trunk is the 64x64 tanh FCNN this
    module instantiates. *)

type activation = Tanh | Relu | Linear

type t = { layers : Dense.t list; act : activation }

(** [create rng ~dims ~act] builds a stack with [dims = [in; h1; ...; out]];
    the activation is applied after every layer except the last. *)
let create (rng : Rng.t) ~(dims : int list) ~(act : activation) : t =
  let rec build = function
    | a :: (b :: _ as rest) ->
        Dense.create rng ~in_dim:a ~out_dim:b :: build rest
    | _ -> []
  in
  { layers = build dims; act }

let act_fwd (act : activation) (v : Tensor.vec) : Tensor.vec =
  match act with
  | Tanh -> Tensor.tanh_fwd v
  | Relu -> Tensor.relu_fwd v
  | Linear -> v

let act_bwd (act : activation) ~(y : Tensor.vec) ~(dy : Tensor.vec) : Tensor.vec
    =
  match act with
  | Tanh -> Tensor.tanh_bwd y dy
  | Relu -> Tensor.relu_bwd y dy
  | Linear -> dy

(** Layer inputs + post-activation outputs, cached for the backward pass. *)
type cache = { inputs : Tensor.vec list; output : Tensor.vec }

let forward_cached (t : t) (x : Tensor.vec) : cache =
  let n = List.length t.layers in
  let rec go i x acc = function
    | [] -> { inputs = List.rev acc; output = x }
    | l :: rest ->
        let y = Dense.forward l x in
        let y = if i < n - 1 then act_fwd t.act y else y in
        go (i + 1) y (x :: acc) rest
  in
  go 0 x [] t.layers

let forward (t : t) (x : Tensor.vec) : Tensor.vec = (forward_cached t x).output

(** Batched inference forward: [rows] row-major inputs in [x], activation
    between layers but not after the last, exactly as {!forward_cached}.
    Returns the output buffer — an arena slot (or [x] itself for an empty
    stack); valid until the next use of the same slots. *)
let forward_rows (t : t) (arena : Batch.arena) ~(x : Batch.buf) ~(rows : int)
    : Batch.buf =
  let n = List.length t.layers in
  let rec go i x = function
    | [] -> x
    | (l : Dense.t) :: rest ->
        (* ping-pong between two slots so a layer never reads the buffer
           it is writing *)
        let y = Batch.slot arena (if i land 1 = 0 then "mlp.a" else "mlp.b")
            (rows * l.Dense.out_dim) in
        Dense.forward_rows l ~x ~y ~rows;
        (if i < n - 1 then
           let len = rows * l.Dense.out_dim in
           match t.act with
           | Tanh -> Batch.tanh_inplace y ~len
           | Relu -> Batch.relu_inplace y ~len
           | Linear -> ());
        go (i + 1) y rest
  in
  go 0 x t.layers

(** Backpropagate dL/d(output); accumulates layer gradients and returns
    dL/d(input). Must be called with the cache produced by
    [forward_cached] on the same input. *)
let backward (t : t) (c : cache) ~(dout : Tensor.vec) : Tensor.vec =
  let n = List.length t.layers in
  let layers = Array.of_list t.layers in
  let inputs = Array.of_list c.inputs in
  let dy = ref dout in
  for i = n - 1 downto 0 do
    (* undo the activation (applied after every layer but the last);
       layer i's post-activation output is layer i+1's cached input *)
    if i < n - 1 then dy := act_bwd t.act ~y:inputs.(i + 1) ~dy:!dy;
    dy := Dense.backward layers.(i) ~x:inputs.(i) ~dy:!dy
  done;
  !dy

let params (t : t) : Optim.params =
  List.concat_map Dense.params t.layers

let zero_grad (t : t) : unit = List.iter Dense.zero_grad t.layers

let copy (t : t) : t = { t with layers = List.map Dense.copy t.layers }
