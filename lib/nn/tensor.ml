(** Dense vectors and matrices over [float array], with the handful of
    BLAS-1/2 operations the policy network and code2vec need. Row-major. *)

type vec = float array

type mat = { rows : int; cols : int; data : float array }

let vec_create n = Array.make n 0.0

let mat_create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let get m i j = m.data.((i * m.cols) + j)

let set m i j v = m.data.((i * m.cols) + j) <- v

(** Xavier/Glorot uniform initialization. *)
let mat_xavier (rng : Rng.t) rows cols =
  let limit = sqrt (6.0 /. float_of_int (rows + cols)) in
  { rows; cols;
    data = Array.init (rows * cols) (fun _ -> Rng.range rng ~lo:(-.limit) ~hi:limit) }

let vec_copy = Array.copy

let mat_copy m = { m with data = Array.copy m.data }

let fill_zero (v : vec) = Array.fill v 0 (Array.length v) 0.0

let mat_fill_zero m = Array.fill m.data 0 (Array.length m.data) 0.0

(** y = M x   (M : rows x cols, x : cols, y : rows) *)
let gemv (m : mat) (x : vec) (y : vec) : unit =
  if Array.length x <> m.cols || Array.length y <> m.rows then
    invalid_arg "gemv: dimension mismatch";
  let data = m.data and cols = m.cols in
  for i = 0 to m.rows - 1 do
    let base = i * cols in
    let acc = ref 0.0 in
    for j = 0 to cols - 1 do
      acc := !acc +. (Array.unsafe_get data (base + j) *. Array.unsafe_get x j)
    done;
    y.(i) <- !acc
  done

(** y = Mᵀ x   (x : rows, y : cols) *)
let gemv_t (m : mat) (x : vec) (y : vec) : unit =
  if Array.length x <> m.rows || Array.length y <> m.cols then
    invalid_arg "gemv_t: dimension mismatch";
  fill_zero y;
  let data = m.data and cols = m.cols in
  for i = 0 to m.rows - 1 do
    let base = i * cols in
    let xi = Array.unsafe_get x i in
    if xi <> 0.0 then
      for j = 0 to cols - 1 do
        Array.unsafe_set y j
          (Array.unsafe_get y j +. (Array.unsafe_get data (base + j) *. xi))
      done
  done

(** M += alpha * x yᵀ  (outer-product accumulate; x : rows, y : cols) *)
let ger (m : mat) ~(alpha : float) (x : vec) (y : vec) : unit =
  if Array.length x <> m.rows || Array.length y <> m.cols then
    invalid_arg "ger: dimension mismatch";
  let data = m.data and cols = m.cols in
  for i = 0 to m.rows - 1 do
    let base = i * cols in
    let xi = alpha *. Array.unsafe_get x i in
    if xi <> 0.0 then
      for j = 0 to cols - 1 do
        Array.unsafe_set data (base + j)
          (Array.unsafe_get data (base + j) +. (xi *. Array.unsafe_get y j))
      done
  done

let axpy ~(alpha : float) (x : vec) (y : vec) : unit =
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let dot (a : vec) (b : vec) : float =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let scale (alpha : float) (v : vec) : unit =
  for i = 0 to Array.length v - 1 do
    v.(i) <- v.(i) *. alpha
  done

let add_inplace (dst : vec) (src : vec) : unit = axpy ~alpha:1.0 src dst

let map2_inplace f (dst : vec) (src : vec) : unit =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- f dst.(i) src.(i)
  done

(* ------------------------------------------------------------------ *)
(* Nonlinearities                                                       *)
(* ------------------------------------------------------------------ *)

let tanh_fwd (v : vec) : vec = Array.map tanh v

(** given y = tanh(x) and dL/dy, returns dL/dx *)
let tanh_bwd (y : vec) (dy : vec) : vec =
  Array.init (Array.length y) (fun i -> dy.(i) *. (1.0 -. (y.(i) *. y.(i))))

let relu_fwd (v : vec) : vec = Array.map (fun x -> if x > 0.0 then x else 0.0) v

let relu_bwd (y : vec) (dy : vec) : vec =
  Array.init (Array.length y) (fun i -> if y.(i) > 0.0 then dy.(i) else 0.0)

(** Numerically-stable softmax. *)
let softmax (v : vec) : vec =
  let m = Array.fold_left max neg_infinity v in
  let e = Array.map (fun x -> exp (x -. m)) v in
  let s = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun x -> x /. s) e

let log_softmax (v : vec) : vec =
  let m = Array.fold_left max neg_infinity v in
  let s = Array.fold_left (fun acc x -> acc +. exp (x -. m)) 0.0 v in
  let logz = m +. log s in
  Array.map (fun x -> x -. logz) v

exception Bad_probability of string
(** A probability vector handed to {!sample} was not one: NaN/infinite
    entries, negative mass, or total mass well short of the sampled
    uniform.  A diverged policy surfaces as this error instead of
    silently biasing every deficient draw onto the last action. *)

(** {!sample} with the uniform draw supplied by the caller (so batched
    rollouts can pre-draw the RNG stream in the serial order and apply it
    later).  Selection replicates the historical scan exactly — first
    index whose running sum exceeds [u] — for any valid distribution. *)
let sample_u ~(u : float) (probs : vec) : int =
  let n = Array.length probs in
  if n = 0 then raise (Bad_probability "sample: empty probability vector");
  let acc = ref 0.0 and idx = ref (-1) in
  for i = 0 to n - 1 do
    let p = probs.(i) in
    if not (Float.is_finite p) || p < 0.0 then
      raise
        (Bad_probability
           (Printf.sprintf "sample: probs.(%d) = %h is not a probability" i p));
    acc := !acc +. p;
    if !idx < 0 && u < !acc then idx := i
  done;
  if !idx >= 0 then !idx
  else if !acc < 1.0 -. 1e-6 then
    (* rounding can leave the total a few ulps under 1.0 with u just
       above it — that is fine and falls through to the last index, as
       the scan always did; a *deficient* distribution is an error *)
    raise
      (Bad_probability
         (Printf.sprintf "sample: total mass %h < 1 (u = %h)" !acc u))
  else n - 1

(** Sample an index from a probability vector. *)
let sample (rng : Rng.t) (probs : vec) : int =
  sample_u ~u:(Rng.float rng) probs

let argmax (v : vec) : int =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > v.(!best) then best := i) v;
  !best

let l2_norm (v : vec) : float = sqrt (dot v v)
