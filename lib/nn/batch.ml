(** Batched inference kernels over contiguous [Bigarray] float64 buffers,
    plus the per-domain scratch arena that makes the steady-state hot loop
    allocation-free.

    {b Exactness contract.}  Every kernel here replicates the scalar
    path's floating-point operation order exactly — one accumulator per
    output element, k-sequential accumulation, bias added after the dot,
    elementwise nonlinearities, softmax as max-fold / exp-map / sum-fold /
    divide in index order — so a batched forward is {e bit-identical} to
    the per-sample chain it replaces ([Tensor.gemv] + [add_inplace] +
    [tanh_fwd] + [softmax]).  The differential suites — the batched.*
    test groups — and the trained-checkpoint-bytes gates enforce this;
    do not "optimize" a kernel into a different summation order.

    Buffers are float64 ([Tensor] is [float array], i.e. double): a
    float32 layout would be smaller but would round every intermediate
    and break the bit-identity gate against the scalar path.

    {b Arena.}  [slot] returns a named scratch buffer of at least the
    requested length, growing (never shrinking) on demand; steady state
    reuses the same backing store call after call.  Each domain owns one
    arena via [Domain.DLS], so pool workers never share scratch and the
    kernels need no locks. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create (n : int) : buf =
  Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (max 1 n)

type arena = {
  mutable slots : (string * buf) list;
  mutable int_slots : (string * int array) list;
  mutable float_slots : (string * float array) list;
  table : (int, int) Hashtbl.t;
      (** shared int-keyed scratch table (e.g. context dedup); callers
          [Hashtbl.reset] it before use *)
}

let create_arena () : arena =
  { slots = []; int_slots = []; float_slots = []; table = Hashtbl.create 256 }

(** Drop every buffer (the "cold" state: the next forward re-allocates). *)
let reset (a : arena) : unit =
  a.slots <- [];
  a.int_slots <- [];
  a.float_slots <- [];
  Hashtbl.reset a.table

(* grow to ~1.5x the request so a slowly-increasing batch size does not
   reallocate on every call *)
let grown (n : int) : int = n + (n / 2)

(** Named scratch buffer with capacity >= [len]; contents unspecified. *)
let slot (a : arena) (name : string) (len : int) : buf =
  match List.assoc_opt name a.slots with
  | Some b when Bigarray.Array1.dim b >= len -> b
  | _ ->
      let b = create (grown len) in
      a.slots <- (name, b) :: List.remove_assoc name a.slots;
      b

let int_slot (a : arena) (name : string) (len : int) : int array =
  match List.assoc_opt name a.int_slots with
  | Some b when Array.length b >= len -> b
  | _ ->
      let b = Array.make (max 1 (grown len)) 0 in
      a.int_slots <- (name, b) :: List.remove_assoc name a.int_slots;
      b

let float_slot (a : arena) (name : string) (len : int) : float array =
  match List.assoc_opt name a.float_slots with
  | Some b when Array.length b >= len -> b
  | _ ->
      let b = Array.make (max 1 (grown len)) 0.0 in
      a.float_slots <- (name, b) :: List.remove_assoc name a.float_slots;
      b

(* one arena per domain: pool workers get their own scratch, and a serial
   caller reuses the same warm buffers across calls *)
let dls_arena : arena Domain.DLS.key = Domain.DLS.new_key create_arena

let domain_arena () : arena = Domain.DLS.get dls_arena

let reset_domain_arena () : unit = reset (domain_arena ())

(* ------------------------------------------------------------------ *)
(* Kernels                                                              *)
(* ------------------------------------------------------------------ *)

external get : buf -> int -> float = "%caml_ba_unsafe_ref_1"
external set : buf -> int -> float -> unit = "%caml_ba_unsafe_set_1"

(** [y(r) = W x(r) + b] for [rows] row-major rows — the matrix-matrix
    form of [Dense.forward].  Per output element: one accumulator, the
    exact k-order of [Tensor.gemv] (4x unrolled, {e single} accumulator,
    so the operation sequence — and therefore the bits — is unchanged),
    then [acc +. b.(o)] which is bit-equal to gemv-then-[add_inplace]. *)
let dense_rows ~(w : Tensor.mat) ~(b : Tensor.vec) ~(x : buf) ~(y : buf)
    ~(rows : int) : unit =
  let in_dim = w.Tensor.cols and out_dim = w.Tensor.rows in
  if
    Bigarray.Array1.dim x < rows * in_dim
    || Bigarray.Array1.dim y < rows * out_dim
    || Array.length b <> out_dim
  then invalid_arg "Batch.dense_rows: dimension mismatch";
  let wd = w.Tensor.data in
  let tail = in_dim land 3 and main = in_dim land lnot 3 in
  for r = 0 to rows - 1 do
    let xbase = r * in_dim and ybase = r * out_dim in
    for o = 0 to out_dim - 1 do
      let wbase = o * in_dim in
      let acc = ref 0.0 in
      let k = ref 0 in
      while !k < main do
        let k0 = !k in
        let a0 = !acc +. (Array.unsafe_get wd (wbase + k0) *. get x (xbase + k0)) in
        let a1 = a0 +. (Array.unsafe_get wd (wbase + k0 + 1) *. get x (xbase + k0 + 1)) in
        let a2 = a1 +. (Array.unsafe_get wd (wbase + k0 + 2) *. get x (xbase + k0 + 2)) in
        acc := a2 +. (Array.unsafe_get wd (wbase + k0 + 3) *. get x (xbase + k0 + 3));
        k := k0 + 4
      done;
      for k = main to main + tail - 1 do
        acc := !acc +. (Array.unsafe_get wd (wbase + k) *. get x (xbase + k))
      done;
      set y (ybase + o) (!acc +. Array.unsafe_get b o)
    done
  done

(** Elementwise [tanh] over the first [len] entries, in place — the
    batched [Tensor.tanh_fwd]. *)
let tanh_inplace (x : buf) ~(len : int) : unit =
  for i = 0 to len - 1 do
    set x i (tanh (get x i))
  done

(** Elementwise relu over the first [len] entries, in place. *)
let relu_inplace (x : buf) ~(len : int) : unit =
  for i = 0 to len - 1 do
    let v = get x i in
    set x i (if v > 0.0 then v else 0.0)
  done

(** Dot of buffer row [x[off .. off+len)] with a plain vector, in the
    sequential order of [Tensor.dot]. *)
let dot_row (x : buf) ~(off : int) (v : Tensor.vec) : float =
  let acc = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. (get x (off + i) *. Array.unsafe_get v i)
  done;
  !acc

(** In-place softmax over [s.(0 .. n-1)], replicating [Tensor.softmax]'s
    operation order (max-fold, exp, sum-fold, divide — all in index
    order) so the resulting probabilities are bit-identical. *)
let softmax_inplace (s : float array) ~(n : int) : unit =
  let m = ref neg_infinity in
  for i = 0 to n - 1 do
    if s.(i) > !m then m := s.(i)
  done;
  (* NB [Array.fold_left max] over floats: max neg_infinity x = x, and a
     strictly increasing scan keeps the first maximum — [>] matches *)
  for i = 0 to n - 1 do
    s.(i) <- exp (s.(i) -. !m)
  done;
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    sum := !sum +. s.(i)
  done;
  for i = 0 to n - 1 do
    s.(i) <- s.(i) /. !sum
  done

(** [dst_row += alpha * src_row] over [len] entries ([Tensor.axpy] on
    buffer rows). *)
let axpy_row ~(alpha : float) ~(src : buf) ~(src_off : int) ~(dst : buf)
    ~(dst_off : int) ~(len : int) : unit =
  for j = 0 to len - 1 do
    set dst (dst_off + j) (get dst (dst_off + j) +. (alpha *. get src (src_off + j)))
  done

let fill_zero_row (x : buf) ~(off : int) ~(len : int) : unit =
  for j = 0 to len - 1 do
    set x (off + j) 0.0
  done

(** Copy a [Tensor.mat] row into a buffer row (embedding-table gather). *)
let blit_mat_row ~(src : Tensor.mat) ~(row : int) ~(dst : buf)
    ~(dst_off : int) : unit =
  let base = row * src.Tensor.cols in
  for j = 0 to src.Tensor.cols - 1 do
    set dst (dst_off + j) (Array.unsafe_get src.Tensor.data (base + j))
  done

(** Extract a buffer row into a fresh [Tensor.vec] (the batched-to-scalar
    boundary, e.g. per-sample policy logits handed to the distribution
    code). *)
let row_to_vec (x : buf) ~(off : int) ~(len : int) : Tensor.vec =
  Array.init len (fun j -> get x (off + j))
