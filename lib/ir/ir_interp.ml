(** A reference interpreter for the IR.

    Two uses: (1) semantic equivalence checks — a vectorized loop must
    compute exactly what the scalar loop computed, which qcheck properties
    exercise on random programs; (2) the machine model drives a timing
    observer through it to derive simulated execution time.

    Narrow integer types wrap (sign-extended); [F32] operations round
    through single precision, so vectorizing float code never changes
    results. Division by zero yields 0 (the benchmark generators never
    divide by zero; the guard keeps random programs total). *)

exception Trap of string

type rvalue_v =
  | VI of int64
  | VF of float
  | VVI of int64 array
  | VVF of float array

type mem = MI of int64 array | MF of float array

type state = {
  m : Ir.modul;
  mem : (string, mem) Hashtbl.t;
  mutable steps : int;
  max_steps : int;
  observer : (Ir.instr -> unit) option;
  loop_enter : (Ir.loop -> unit) option;
  loop_exit : (Ir.loop -> unit) option;
}

exception Break_exc
exception Continue_exc
exception Return_exc of rvalue_v option

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

(* ------------------------------------------------------------------ *)
(* Deterministic memory initialization                                  *)
(* ------------------------------------------------------------------ *)

(* A small splitmix-style hash so every array element gets a reproducible,
   nonzero-looking value independent of evaluation order. *)
let mix (a : int) (b : int) : int =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) in
  let h = (h lxor (h lsr 13)) * 0xC2B2AE35 in
  (h lxor (h lsr 16)) land 0x3FFFFFFF

let str_hash (s : string) : int =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFF) s;
  !h

let init_elem_int ~seed ~name_hash i =
  (* small values so predicates/thresholds in the dataset are exercised on
     both sides *)
  Int64.of_int (mix (name_hash + seed) i mod 256)

let init_elem_float ~seed ~name_hash i =
  float_of_int (mix (name_hash + seed) i mod 1024) /. 1024.0

let alloc_array ~seed (a : Ir.array_obj) : mem =
  let n = Ir.array_elems a in
  let nh = str_hash a.Ir.arr_name in
  if Ir.is_float_scalar a.Ir.arr_elem then
    MF (Array.init n (fun i -> init_elem_float ~seed ~name_hash:nh i))
  else MI (Array.init n (fun i -> init_elem_int ~seed ~name_hash:nh i))

let init_state ?(seed = 0) ?(max_steps = 200_000_000) ?observer ?loop_enter
    ?loop_exit (m : Ir.modul) : state =
  let mem = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace mem a.Ir.arr_name (alloc_array ~seed a)) m.Ir.m_arrays;
  { m; mem; steps = 0; max_steps; observer; loop_enter; loop_exit }

(* ------------------------------------------------------------------ *)
(* Scalar semantics                                                     *)
(* ------------------------------------------------------------------ *)

let[@inline always] wrap_int (sty : Ir.scalar_ty) (v : int64) : int64 =
  match sty with
  | Ir.I1 -> Int64.logand v 1L
  | Ir.I8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | Ir.I16 -> Int64.shift_right (Int64.shift_left v 48) 48
  | Ir.I32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | Ir.I64 -> v
  | Ir.F32 | Ir.F64 -> v

let[@inline always] round_f32 (f : float) : float = Int32.float_of_bits (Int32.bits_of_float f)

let[@inline always] wrap_float (sty : Ir.scalar_ty) (f : float) : float =
  match sty with Ir.F32 -> round_f32 f | _ -> f

let ibin_eval (op : Ir.ibin) (a : int64) (b : int64) : int64 =
  let open Int64 in
  match op with
  | Ir.Add -> add a b
  | Ir.Sub -> sub a b
  | Ir.Mul -> mul a b
  | Ir.SDiv -> if b = 0L then 0L else div a b
  | Ir.SRem -> if b = 0L then 0L else rem a b
  | Ir.Shl -> shift_left a (to_int (logand b 63L))
  | Ir.AShr -> shift_right a (to_int (logand b 63L))
  | Ir.And -> logand a b
  | Ir.Or -> logor a b
  | Ir.Xor -> logxor a b

let[@inline always] fbin_eval (op : Ir.fbin) (a : float) (b : float) : float =
  match op with
  | Ir.FAdd -> a +. b
  | Ir.FSub -> a -. b
  | Ir.FMul -> a *. b
  | Ir.FDiv -> a /. b

let cmp_eval_i (op : Ir.cmp) (a : int64) (b : int64) : int64 =
  let r =
    match op with
    | Ir.CLt -> a < b
    | Ir.CLe -> a <= b
    | Ir.CGt -> a > b
    | Ir.CGe -> a >= b
    | Ir.CEq -> a = b
    | Ir.CNe -> a <> b
  in
  if r then 1L else 0L

let cmp_eval_f (op : Ir.cmp) (a : float) (b : float) : int64 =
  let r =
    match op with
    | Ir.CLt -> a < b
    | Ir.CLe -> a <= b
    | Ir.CGt -> a > b
    | Ir.CGe -> a >= b
    | Ir.CEq -> a = b
    | Ir.CNe -> a <> b
  in
  if r then 1L else 0L

(* ------------------------------------------------------------------ *)
(* Register file                                                        *)
(* ------------------------------------------------------------------ *)

type frame = { fn : Ir.func; regs : rvalue_v array; st : state }

let get_reg fr r = fr.regs.(r)

let set_reg fr r v = fr.regs.(r) <- v

let eval_value fr (v : Ir.value) : rvalue_v =
  match v with
  | Ir.Reg r -> get_reg fr r
  | Ir.IConst i -> VI i
  | Ir.FConst f -> VF f

let as_int = function
  | VI i -> i
  | VF f -> Int64.of_float f
  | VVI _ | VVF _ -> trap "expected scalar int, got vector"

let as_float = function
  | VF f -> f
  | VI i -> Int64.to_float i
  | VVI _ | VVF _ -> trap "expected scalar float, got vector"

(** View a value as an [n]-lane integer vector (splatting scalars). *)
let as_vec_i n = function
  | VVI a ->
      if Array.length a <> n then
        trap "vector width mismatch: have %d lanes, need %d" (Array.length a) n
      else a
  | VI i -> Array.make n i
  | VF _ | VVF _ -> trap "expected int vector"

let as_vec_f n = function
  | VVF a ->
      if Array.length a <> n then
        trap "vector width mismatch: have %d lanes, need %d" (Array.length a) n
      else a
  | VF f -> Array.make n f
  | VI i -> Array.make n (Int64.to_float i)
  | VVI _ -> trap "expected float vector"

(* ------------------------------------------------------------------ *)
(* Memory access                                                        *)
(* ------------------------------------------------------------------ *)

let find_mem st base =
  match Hashtbl.find_opt st.mem base with
  | Some m -> m
  | None -> trap "unknown array %s" base

let mem_load_scalar st (sty : Ir.scalar_ty) base (idx : int) : rvalue_v =
  match find_mem st base with
  | MI a ->
      if idx < 0 || idx >= Array.length a then
        trap "out-of-bounds load %s[%d] (size %d)" base idx (Array.length a);
      VI (wrap_int sty a.(idx))
  | MF a ->
      if idx < 0 || idx >= Array.length a then
        trap "out-of-bounds load %s[%d] (size %d)" base idx (Array.length a);
      VF (wrap_float sty a.(idx))

let mem_store_scalar st (sty : Ir.scalar_ty) base (idx : int) (v : rvalue_v) =
  match find_mem st base with
  | MI a ->
      if idx < 0 || idx >= Array.length a then
        trap "out-of-bounds store %s[%d] (size %d)" base idx (Array.length a);
      a.(idx) <- wrap_int sty (as_int v)
  | MF a ->
      if idx < 0 || idx >= Array.length a then
        trap "out-of-bounds store %s[%d] (size %d)" base idx (Array.length a);
      a.(idx) <- wrap_float sty (as_float v)

(* ------------------------------------------------------------------ *)
(* Rvalue evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let eval_cast fr (k : Ir.cast_kind) ~(to_ : Ir.ty) (v : rvalue_v) : rvalue_v =
  let open Ir in
  let sty = elem_ty to_ in
  let conv_scalar_i (i : int64) : rvalue_v =
    match k with
    | ZExt | SExt | Trunc -> VI (wrap_int sty i)
    | SiToFp -> VF (wrap_float sty (Int64.to_float i))
    | FpExt | FpTrunc | FpToSi -> trap "int input to float cast"
  in
  let conv_scalar_f (f : float) : rvalue_v =
    match k with
    | FpExt | FpTrunc -> VF (wrap_float sty f)
    | FpToSi -> VI (wrap_int sty (Int64.of_float f))
    | ZExt | SExt | Trunc | SiToFp -> trap "float input to int cast"
  in
  ignore fr;
  (* a scalar input to a vector-typed cast is an (implicit) broadcast of a
     loop-invariant value *)
  let broadcast r =
    match (to_, r) with
    | Vec (n, _), VI i -> VVI (Array.make n i)
    | Vec (n, _), VF f -> VVF (Array.make n f)
    | _, r -> r
  in
  match v with
  | VI i -> broadcast (conv_scalar_i i)
  | VF f -> broadcast (conv_scalar_f f)
  | VVI a ->
      let results = Array.map (fun i -> conv_scalar_i i) a in
      if is_float_scalar sty then
        VVF (Array.map (function VF f -> f | _ -> assert false) results)
      else VVI (Array.map (function VI i -> i | _ -> assert false) results)
  | VVF a ->
      let results = Array.map (fun f -> conv_scalar_f f) a in
      if is_float_scalar sty then
        VVF (Array.map (function VF f -> f | _ -> assert false) results)
      else VVI (Array.map (function VI i -> i | _ -> assert false) results)

let eval_rvalue fr (rv : Ir.rvalue) : rvalue_v =
  let open Ir in
  let st = fr.st in
  match rv with
  | IBin (op, ty, a, b) -> (
      let sty = elem_ty ty in
      match ty with
      | Scalar _ ->
          VI (wrap_int sty (ibin_eval op (as_int (eval_value fr a))
                              (as_int (eval_value fr b))))
      | Vec (n, _) ->
          let va = as_vec_i n (eval_value fr a)
          and vb = as_vec_i n (eval_value fr b) in
          VVI (Array.init n (fun k -> wrap_int sty (ibin_eval op va.(k) vb.(k)))))
  | FBin (op, ty, a, b) -> (
      let sty = elem_ty ty in
      match ty with
      | Scalar _ ->
          VF (wrap_float sty (fbin_eval op (as_float (eval_value fr a))
                                (as_float (eval_value fr b))))
      | Vec (n, _) ->
          let va = as_vec_f n (eval_value fr a)
          and vb = as_vec_f n (eval_value fr b) in
          VVF (Array.init n (fun k -> wrap_float sty (fbin_eval op va.(k) vb.(k)))))
  | ICmp (op, ty, a, b) -> (
      match ty with
      | Scalar _ ->
          VI (cmp_eval_i op (as_int (eval_value fr a)) (as_int (eval_value fr b)))
      | Vec (n, _) ->
          let va = as_vec_i n (eval_value fr a)
          and vb = as_vec_i n (eval_value fr b) in
          VVI (Array.init n (fun k -> cmp_eval_i op va.(k) vb.(k))))
  | FCmp (op, ty, a, b) -> (
      match ty with
      | Scalar _ ->
          VI (cmp_eval_f op (as_float (eval_value fr a)) (as_float (eval_value fr b)))
      | Vec (n, _) ->
          let va = as_vec_f n (eval_value fr a)
          and vb = as_vec_f n (eval_value fr b) in
          VVI (Array.init n (fun k -> cmp_eval_f op va.(k) vb.(k))))
  | Select (ty, c, a, b) -> (
      match ty with
      | Scalar s ->
          let cv = as_int (eval_value fr c) in
          let pick = if cv <> 0L then a else b in
          if is_float_scalar s then VF (as_float (eval_value fr pick))
          else VI (as_int (eval_value fr pick))
      | Vec (n, s) ->
          let cv = as_vec_i n (eval_value fr c) in
          if is_float_scalar s then begin
            let va = as_vec_f n (eval_value fr a)
            and vb = as_vec_f n (eval_value fr b) in
            VVF (Array.init n (fun k -> if cv.(k) <> 0L then va.(k) else vb.(k)))
          end
          else begin
            let va = as_vec_i n (eval_value fr a)
            and vb = as_vec_i n (eval_value fr b) in
            VVI (Array.init n (fun k -> if cv.(k) <> 0L then va.(k) else vb.(k)))
          end)
  | Cast (k, _, to_, v) -> eval_cast fr k ~to_ (eval_value fr v)
  | Load (ty, mref) -> (
      let base_idx = Int64.to_int (as_int (eval_value fr mref.index)) in
      match ty with
      | Scalar s -> (
          (* a masked-off scalar access (VF=1 if-converted code) is a no-op *)
          match mref.mask with
          | Some mv when as_int (eval_value fr mv) = 0L ->
              if is_float_scalar s then VF 0.0 else VI 0L
          | _ -> mem_load_scalar st s mref.base base_idx)
      | Vec (n, s) ->
          let mask =
            match mref.mask with
            | Some mv -> as_vec_i n (eval_value fr mv)
            | None -> Array.make n 1L
          in
          if is_float_scalar s then
            VVF
              (Array.init n (fun k ->
                   if mask.(k) <> 0L then
                     as_float
                       (mem_load_scalar st s mref.base (base_idx + (k * mref.stride)))
                   else 0.0))
          else
            VVI
              (Array.init n (fun k ->
                   if mask.(k) <> 0L then
                     as_int
                       (mem_load_scalar st s mref.base (base_idx + (k * mref.stride)))
                   else 0L)))
  | Splat (ty, v) -> (
      match ty with
      | Scalar _ -> eval_value fr v
      | Vec (n, s) ->
          if is_float_scalar s then VVF (Array.make n (as_float (eval_value fr v)))
          else VVI (Array.make n (wrap_int s (as_int (eval_value fr v)))))
  | Extract (s, v, lane) -> (
      match eval_value fr v with
      | VVI a ->
          if lane >= Array.length a then
            trap "extract lane %d out of range (width %d)" lane (Array.length a);
          VI (wrap_int s a.(lane))
      | VVF a ->
          if lane >= Array.length a then
            trap "extract lane %d out of range (width %d)" lane (Array.length a);
          VF (wrap_float s a.(lane))
      | VI _ | VF _ -> trap "extract from scalar")
  | Reduce (op, s, v) -> (
      match eval_value fr v with
      | VVI a ->
          let f acc x =
            match op with
            | RAdd -> Int64.add acc x
            | RMul -> Int64.mul acc x
            | RMin -> min acc x
            | RMax -> max acc x
            | RAnd -> Int64.logand acc x
            | ROr -> Int64.logor acc x
            | RXor -> Int64.logxor acc x
          in
          VI (wrap_int s (Array.fold_left f a.(0) (Array.sub a 1 (Array.length a - 1))))
      | VVF a ->
          let f acc x =
            match op with
            | RAdd -> acc +. x
            | RMul -> acc *. x
            | RMin -> min acc x
            | RMax -> max acc x
            | RAnd | ROr | RXor -> trap "bitwise reduce on float vector"
          in
          (* F32 reductions round pairwise like the scalar loop would *)
          let wrapf x = wrap_float s x in
          VF (Array.fold_left (fun acc x -> wrapf (f acc x)) a.(0)
                (Array.sub a 1 (Array.length a - 1)))
      | VI _ | VF _ -> trap "reduce of scalar")
  | Mov (ty, v) -> (
      let sv = eval_value fr v in
      match (ty, sv) with
      | Scalar s, VI i -> VI (wrap_int s i)
      | Scalar s, VF f -> VF (wrap_float s f)
      | Vec (n, s), VI i -> VVI (Array.make n (wrap_int s i))
      | Vec (n, s), VF f -> VVF (Array.make n (wrap_float s f))
      | _, v -> v)
  | Stride (ty, v, step) -> (
      match ty with
      | Scalar _ -> eval_value fr v
      | Vec (n, s) ->
          if is_float_scalar s then trap "stride vector must be integral"
          else
            let base = as_int (eval_value fr v) in
            VVI
              (Array.init n (fun k ->
                   wrap_int s (Int64.add base (Int64.of_int (k * step))))))

(* ------------------------------------------------------------------ *)
(* Builtin calls                                                        *)
(* ------------------------------------------------------------------ *)

let eval_builtin name (args : rvalue_v list) : rvalue_v =
  let f1 f = match args with [ a ] -> VF (f (as_float a)) | _ -> trap "%s arity" name in
  let f2 f =
    match args with
    | [ a; b ] -> VF (f (as_float a) (as_float b))
    | _ -> trap "%s arity" name
  in
  match name with
  | "sqrt" | "sqrtf" -> f1 sqrt
  | "fabs" | "fabsf" -> f1 abs_float
  | "exp" -> f1 exp
  | "log" -> f1 (fun x -> if x <= 0.0 then 0.0 else log x)
  | "sin" -> f1 sin
  | "cos" -> f1 cos
  | "floor" -> f1 floor
  | "ceil" -> f1 ceil
  | "pow" -> f2 ( ** )
  | "fmax" -> f2 max
  | "fmin" -> f2 min
  | "abs" -> (
      match args with [ a ] -> VI (Int64.abs (as_int a)) | _ -> trap "abs arity")
  | _ -> trap "unknown builtin %s" name

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

let tick fr (i : Ir.instr) =
  fr.st.steps <- fr.st.steps + 1;
  if fr.st.steps > fr.st.max_steps then trap "step budget exceeded";
  match fr.st.observer with Some f -> f i | None -> ()

let exec_instr fr (i : Ir.instr) =
  tick fr i;
  match i with
  | Ir.Def (r, rv) -> set_reg fr r (eval_rvalue fr rv)
  | Ir.Store (ty, mref, v) -> (
      let st = fr.st in
      let base_idx = Int64.to_int (as_int (eval_value fr mref.index)) in
      match ty with
      | Ir.Scalar s -> (
          match mref.mask with
          | Some mv when as_int (eval_value fr mv) = 0L -> ()
          | _ -> mem_store_scalar st s mref.base base_idx (eval_value fr v))
      | Ir.Vec (n, s) ->
          let mask =
            match mref.mask with
            | Some mv -> as_vec_i n (eval_value fr mv)
            | None -> Array.make n 1L
          in
          let sv = eval_value fr v in
          if Ir.is_float_scalar s then begin
            let va = as_vec_f n sv in
            for k = 0 to n - 1 do
              if mask.(k) <> 0L then
                mem_store_scalar st s mref.base (base_idx + (k * mref.stride))
                  (VF va.(k))
            done
          end
          else begin
            let va = as_vec_i n sv in
            for k = 0 to n - 1 do
              if mask.(k) <> 0L then
                mem_store_scalar st s mref.base (base_idx + (k * mref.stride))
                  (VI va.(k))
            done
          end)
  | Ir.CallI (ro, name, args) -> (
      let vals = List.map (eval_value fr) args in
      let result = eval_builtin name vals in
      match ro with Some r -> set_reg fr r result | None -> ())

let exec_code fr ((instrs, v) : Ir.code) : rvalue_v =
  List.iter (exec_instr fr) instrs;
  eval_value fr v

let rec exec_node fr (node : Ir.node) =
  match node with
  | Ir.Block is -> List.iter (exec_instr fr) is
  | Ir.If { cond; then_; else_ } ->
      let c = exec_code fr cond in
      if as_int c <> 0L then List.iter (exec_node fr) then_
      else List.iter (exec_node fr) else_
  | Ir.Loop l -> exec_loop fr l
  | Ir.WhileLoop { w_cond; w_body } ->
      let continue = ref true in
      while !continue do
        if as_int (exec_code fr w_cond) = 0L then continue := false
        else
          try List.iter (exec_node fr) w_body with
          | Break_exc -> continue := false
          | Continue_exc -> ()
      done
  | Ir.Return c -> raise (Return_exc (Option.map (exec_code fr) c))
  | Ir.BreakN -> raise Break_exc
  | Ir.ContinueN -> raise Continue_exc

and exec_loop fr (l : Ir.loop) =
  (match fr.st.loop_enter with Some f -> f l | None -> ());
  let init_v = exec_code fr l.Ir.l_init in
  set_reg fr l.Ir.l_var init_v;
  let bound = as_int (exec_code fr l.Ir.l_bound) in
  let sty =
    match Ir.reg_ty fr.fn l.Ir.l_var with Ir.Scalar s -> s | Ir.Vec _ -> Ir.I64
  in
  (try
     let continue = ref true in
     while !continue do
       let i = as_int (get_reg fr l.Ir.l_var) in
       if cmp_eval_i l.Ir.l_cmp i bound = 0L then continue := false
       else begin
         (try List.iter (exec_node fr) l.Ir.l_body with Continue_exc -> ());
         let i' = as_int (get_reg fr l.Ir.l_var) in
         set_reg fr l.Ir.l_var
           (VI (wrap_int sty (Int64.add i' (Int64.of_int l.Ir.l_step))))
       end
     done
   with Break_exc -> ());
  match fr.st.loop_exit with Some f -> f l | None -> ()

(** Run a function. [args] bind the scalar parameters in order; missing
    arguments default to small deterministic values. *)
let run_func (st : state) (fn : Ir.func) ?(args = []) () : rvalue_v option =
  let regs = Array.make (max 1 fn.Ir.fn_nregs) (VI 0L) in
  let fr = { fn; regs; st } in
  List.iteri
    (fun i (_, r, sty) ->
      let v =
        match List.nth_opt args i with
        | Some v -> v
        | None ->
            if Ir.is_float_scalar sty then VF 1.5
            else VI (Int64.of_int ((i + 2) * 3))
      in
      set_reg fr r v)
    fn.Ir.fn_params;
  try
    List.iter (exec_node fr) fn.Ir.fn_body;
    None
  with Return_exc v -> v

(** Hash of the full memory state plus a result value; used to compare a
    scalar run against a vectorized run. *)
let state_fingerprint (st : state) (result : rvalue_v option) : int =
  let h = ref 17 in
  let mixh x = h := mix !h x in
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) st.mem [] |> List.sort compare
  in
  List.iter
    (fun name ->
      mixh (str_hash name);
      match Hashtbl.find st.mem name with
      | MI a -> Array.iter (fun v -> mixh (Int64.to_int (Int64.logand v 0xFFFFFFFFL))) a
      | MF a -> Array.iter (fun v -> mixh (Hashtbl.hash v)) a)
    names;
  (match result with
  | Some (VI i) -> mixh (Int64.to_int (Int64.logand i 0xFFFFFFFFL))
  | Some (VF f) -> mixh (Hashtbl.hash f)
  | Some (VVI _ | VVF _) | None -> ());
  !h
