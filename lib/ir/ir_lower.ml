(** Lowering from the mini-C AST to the IR.

    Responsibilities:
    - allocate module-level arrays for global (and local) array variables;
    - map scalar variables to virtual registers with C-style promotions;
    - linearize multi-dimensional array indexing;
    - canonicalize [for] loops into counted [Ir.Loop] nodes (induction
      variable, hoisted loop-invariant bound, constant step) — loops that do
      not fit the canonical shape become [Ir.WhileLoop]s, which the
      vectorizer will refuse, exactly as LLVM's loop vectorizer refuses
      loops it cannot canonicalize;
    - carry [#pragma clang loop] annotations through to [Ir.loop].

    Deliberate semantic simplifications (documented in DESIGN.md): logical
    [&&]/[||] and the ternary operator evaluate both sides (no
    short-circuit); unsigned arithmetic uses signed operations. The
    benchmark corpus contains no code where this is observable. *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let scalar_of_base : Minic.Ast.base_ty -> Ir.scalar_ty = function
  | Minic.Ast.Void -> error "cannot lower void value"
  | Minic.Ast.Char -> Ir.I8
  | Minic.Ast.Short -> Ir.I16
  | Minic.Ast.Int -> Ir.I32
  | Minic.Ast.Long -> Ir.I64
  | Minic.Ast.Float -> Ir.F32
  | Minic.Ast.Double -> Ir.F64

(** C usual arithmetic conversions on IR scalar types. *)
let promote (a : Ir.scalar_ty) (b : Ir.scalar_ty) : Ir.scalar_ty =
  let rank = function
    | Ir.I1 -> 0
    | Ir.I8 -> 1
    | Ir.I16 -> 2
    | Ir.I32 -> 3
    | Ir.I64 -> 4
    | Ir.F32 -> 5
    | Ir.F64 -> 6
  in
  let promote1 t = if rank t < rank Ir.I32 then Ir.I32 else t in
  let a = promote1 a and b = promote1 b in
  if rank a >= rank b then a else b

type local =
  | LReg of Ir.reg * Ir.scalar_ty
  | LArray of string * int list  (** module array name, concrete dims *)

type ctx = {
  m : Ir.modul;
  fn : Ir.func;
  bindings : (string * int) list;
  locals : (string, local) Hashtbl.t;
  loop_counter : int ref;
  gensym_counter : int ref;
      (** per-module, so concurrent lowerings on different domains produce
          identical (and un-torn) names for identical programs *)
  default_param_dim : int;
}

(* ------------------------------------------------------------------ *)
(* Scope handling                                                       *)
(* ------------------------------------------------------------------ *)

(** Run [f] in a child scope: locals declared inside are forgotten after,
    shadowed entries restored. *)
let in_scope ctx f =
  let saved = Hashtbl.copy ctx.locals in
  let r = f () in
  Hashtbl.reset ctx.locals;
  Hashtbl.iter (fun k v -> Hashtbl.replace ctx.locals k v) saved;
  r

let lookup_local ctx name = Hashtbl.find_opt ctx.locals name

(* ------------------------------------------------------------------ *)
(* Casts                                                                *)
(* ------------------------------------------------------------------ *)

let cast_kind ~(from_ : Ir.scalar_ty) ~(to_ : Ir.scalar_ty) : Ir.cast_kind option
    =
  let open Ir in
  if from_ = to_ then None
  else
    match (is_float_scalar from_, is_float_scalar to_) with
    | true, true -> Some (if scalar_size to_ > scalar_size from_ then FpExt else FpTrunc)
    | true, false -> Some FpToSi
    | false, true -> Some SiToFp
    | false, false ->
        Some (if scalar_size to_ > scalar_size from_ then SExt else Trunc)

(** Emit a conversion of [v] from [from_] to [to_], if needed. *)
let convert ctx (code : Ir.instr list) (v : Ir.value) ~from_ ~to_ :
    Ir.instr list * Ir.value =
  match cast_kind ~from_ ~to_ with
  | None -> (code, v)
  | Some k ->
      (* constant-fold casts of literals *)
      let open Ir in
      (match (v, k) with
      | IConst i, SiToFp -> (code, FConst (Int64.to_float i))
      | FConst f, FpToSi -> (code, IConst (Int64.of_float f))
      | IConst _, (SExt | ZExt | Trunc) -> (code, v)
      | FConst _, (FpExt | FpTrunc) -> (code, v)
      | _ ->
          let r = fresh_reg ctx.fn (Scalar to_) in
          (code @ [ Def (r, Cast (k, Scalar from_, Scalar to_, v)) ], Reg r))

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                  *)
(* ------------------------------------------------------------------ *)

(** Split a (possibly nested) [Index] expression into the base identifier
    and the index expressions, outermost first. *)
let rec split_index (e : Minic.Ast.expr) : string * Minic.Ast.expr list =
  match e with
  | Minic.Ast.Index (a, i) ->
      let base, idxs = split_index a in
      (base, idxs @ [ i ])
  | Minic.Ast.Ident name -> (name, [])
  | _ -> error "unsupported base expression for array indexing"

let ibin_of_ast : Minic.Ast.binop -> Ir.ibin = function
  | Minic.Ast.Add -> Ir.Add
  | Minic.Ast.Sub -> Ir.Sub
  | Minic.Ast.Mul -> Ir.Mul
  | Minic.Ast.Div -> Ir.SDiv
  | Minic.Ast.Rem -> Ir.SRem
  | Minic.Ast.Shl -> Ir.Shl
  | Minic.Ast.Shr -> Ir.AShr
  | Minic.Ast.BitAnd -> Ir.And
  | Minic.Ast.BitOr -> Ir.Or
  | Minic.Ast.BitXor -> Ir.Xor
  | op -> error "not an integer binop: %s" (Minic.Ast.binop_to_string op)

let fbin_of_ast : Minic.Ast.binop -> Ir.fbin = function
  | Minic.Ast.Add -> Ir.FAdd
  | Minic.Ast.Sub -> Ir.FSub
  | Minic.Ast.Mul -> Ir.FMul
  | Minic.Ast.Div -> Ir.FDiv
  | op -> error "not a float binop: %s" (Minic.Ast.binop_to_string op)

let cmp_of_ast : Minic.Ast.binop -> Ir.cmp = function
  | Minic.Ast.Lt -> Ir.CLt
  | Minic.Ast.Le -> Ir.CLe
  | Minic.Ast.Gt -> Ir.CGt
  | Minic.Ast.Ge -> Ir.CGe
  | Minic.Ast.Eq -> Ir.CEq
  | Minic.Ast.Ne -> Ir.CNe
  | op -> error "not a comparison: %s" (Minic.Ast.binop_to_string op)

(** Lower an expression. Returns the emitted instructions, the result value,
    and its scalar type. *)
let rec lower_expr ctx (e : Minic.Ast.expr) : Ir.instr list * Ir.value * Ir.scalar_ty
    =
  let open Ir in
  match e with
  | Minic.Ast.IntLit i -> ([], IConst i, I32)
  | Minic.Ast.FloatLit f -> ([], FConst f, F64)
  | Minic.Ast.CharLit c -> ([], IConst (Int64.of_int (Char.code c)), I8)
  | Minic.Ast.Ident name -> (
      match lookup_local ctx name with
      | Some (LReg (r, sty)) -> ([], Reg r, sty)
      | Some (LArray (aname, [ 1 ])) ->
          (* global scalar, stored as a 1-element array *)
          let elem =
            match find_array ctx.m aname with
            | Some a -> a.arr_elem
            | None -> error "array object %s vanished" aname
          in
          let r = fresh_reg ctx.fn (Scalar elem) in
          ( [ Def (r, Load (Scalar elem,
                            { base = aname; index = IConst 0L; stride = 1;
                              mask = None })) ],
            Reg r, elem )
      | Some (LArray _) -> error "array %s used as a scalar value" name
      | None -> (
          match List.assoc_opt name ctx.bindings with
          | Some v -> ([], IConst (Int64.of_int v), I32)
          | None -> error "undeclared identifier %s" name))
  | Minic.Ast.Index _ ->
      let code, mref, sty = lower_mem_ref ctx e in
      let r = fresh_reg ctx.fn (Scalar sty) in
      (code @ [ Def (r, Load (Scalar sty, mref)) ], Reg r, sty)
  | Minic.Ast.Unop (Minic.Ast.Neg, a) ->
      let code, v, sty = lower_expr ctx a in
      let r = fresh_reg ctx.fn (Scalar sty) in
      let rv =
        if is_float_scalar sty then FBin (FSub, Scalar sty, FConst 0.0, v)
        else IBin (Sub, Scalar sty, IConst 0L, v)
      in
      (code @ [ Def (r, rv) ], Reg r, sty)
  | Minic.Ast.Unop (Minic.Ast.Not, a) ->
      let code, v, sty = lower_expr ctx a in
      let c = fresh_reg ctx.fn (Scalar I1) in
      let cmp_instr =
        if is_float_scalar sty then Def (c, FCmp (CEq, Scalar sty, v, FConst 0.0))
        else Def (c, ICmp (CEq, Scalar sty, v, IConst 0L))
      in
      let r = fresh_reg ctx.fn (Scalar I32) in
      (code @ [ cmp_instr; Def (r, Cast (ZExt, Scalar I1, Scalar I32, Reg c)) ],
       Reg r, I32)
  | Minic.Ast.Unop (Minic.Ast.BitNot, a) ->
      let code, v, sty = lower_expr ctx a in
      let r = fresh_reg ctx.fn (Scalar sty) in
      (code @ [ Def (r, IBin (Xor, Scalar sty, v, IConst (-1L))) ], Reg r, sty)
  | Minic.Ast.Unop ((Minic.Ast.PreInc | Minic.Ast.PreDec) as op, a) ->
      let delta = if op = Minic.Ast.PreInc then 1L else -1L in
      let code = lower_incr ctx a delta in
      let code2, v, sty = lower_expr ctx a in
      (code @ code2, v, sty)
  | Minic.Ast.Unop ((Minic.Ast.PostInc | Minic.Ast.PostDec) as op, a) ->
      let delta = if op = Minic.Ast.PostInc then 1L else -1L in
      let code0, v, sty = lower_expr ctx a in
      (* save the old value before updating *)
      let old = fresh_reg ctx.fn (Ir.Scalar sty) in
      let save = Def (old, Mov (Scalar sty, v)) in
      let code1 = lower_incr ctx a delta in
      (code0 @ [ save ] @ code1, Reg old, sty)
  | Minic.Ast.Binop ((Minic.Ast.LogAnd | Minic.Ast.LogOr) as op, a, b) ->
      let ca, va, sa = lower_expr ctx a in
      let cb, vb, sb = lower_expr ctx b in
      let to_bool code v sty =
        let c = fresh_reg ctx.fn (Scalar I1) in
        let i =
          if is_float_scalar sty then Def (c, FCmp (CNe, Scalar sty, v, FConst 0.0))
          else Def (c, ICmp (CNe, Scalar sty, v, IConst 0L))
        in
        (code @ [ i ], Reg c)
      in
      let ca, ba = to_bool ca va sa in
      let cb, bb = to_bool cb vb sb in
      let r1 = fresh_reg ctx.fn (Scalar I1) in
      let combine =
        if op = Minic.Ast.LogAnd then IBin (And, Scalar I1, ba, bb)
        else IBin (Or, Scalar I1, ba, bb)
      in
      let r = fresh_reg ctx.fn (Scalar I32) in
      ( ca @ cb @ [ Def (r1, combine); Def (r, Cast (ZExt, Scalar I1, Scalar I32, Reg r1)) ],
        Reg r, I32 )
  | Minic.Ast.Binop
      ((Minic.Ast.Lt | Minic.Ast.Gt | Minic.Ast.Le | Minic.Ast.Ge | Minic.Ast.Eq
       | Minic.Ast.Ne) as op, a, b) ->
      let ca, va, sa = lower_expr ctx a in
      let cb, vb, sb = lower_expr ctx b in
      let ct = promote sa sb in
      let ca, va = convert ctx ca va ~from_:sa ~to_:ct in
      let cb, vb = convert ctx cb vb ~from_:sb ~to_:ct in
      let c = fresh_reg ctx.fn (Scalar I1) in
      let cmp =
        if is_float_scalar ct then FCmp (cmp_of_ast op, Scalar ct, va, vb)
        else ICmp (cmp_of_ast op, Scalar ct, va, vb)
      in
      let r = fresh_reg ctx.fn (Scalar I32) in
      ( ca @ cb @ [ Def (c, cmp); Def (r, Cast (ZExt, Scalar I1, Scalar I32, Reg c)) ],
        Reg r, I32 )
  | Minic.Ast.Binop (op, a, b) ->
      let ca, va, sa = lower_expr ctx a in
      let cb, vb, sb = lower_expr ctx b in
      let ct = promote sa sb in
      let ca, va = convert ctx ca va ~from_:sa ~to_:ct in
      let cb, vb = convert ctx cb vb ~from_:sb ~to_:ct in
      let r = fresh_reg ctx.fn (Scalar ct) in
      let rv =
        if is_float_scalar ct then FBin (fbin_of_ast op, Scalar ct, va, vb)
        else IBin (ibin_of_ast op, Scalar ct, va, vb)
      in
      (ca @ cb @ [ Def (r, rv) ], Reg r, ct)
  | Minic.Ast.Assign (lhs, rhs) ->
      let code, v, sty = lower_assign ctx lhs rhs in
      (code, v, sty)
  | Minic.Ast.OpAssign (op, lhs, rhs) ->
      lower_assign ctx lhs (Minic.Ast.Binop (op, lhs, rhs))
  | Minic.Ast.Ternary (c, t, f) ->
      let cc, cv, cs = lower_expr ctx c in
      let ct_, tv, ts = lower_expr ctx t in
      let cf, fv, fs = lower_expr ctx f in
      let rt = promote ts fs in
      let ct_, tv = convert ctx ct_ tv ~from_:ts ~to_:rt in
      let cf, fv = convert ctx cf fv ~from_:fs ~to_:rt in
      let b = fresh_reg ctx.fn (Scalar I1) in
      let test =
        if is_float_scalar cs then Def (b, FCmp (CNe, Scalar cs, cv, FConst 0.0))
        else Def (b, ICmp (CNe, Scalar cs, cv, IConst 0L))
      in
      let r = fresh_reg ctx.fn (Scalar rt) in
      ( cc @ ct_ @ cf @ [ test; Def (r, Select (Scalar rt, Reg b, tv, fv)) ],
        Reg r, rt )
  | Minic.Ast.Call (name, args) ->
      let codes, vals =
        List.fold_left
          (fun (cs, vs) a ->
            let c, v, s = lower_expr ctx a in
            (* math builtins take doubles *)
            let c, v = convert ctx c v ~from_:s ~to_:F64 in
            (cs @ c, vs @ [ v ]))
          ([], []) args
      in
      let r = fresh_reg ctx.fn (Scalar F64) in
      (codes @ [ CallI (Some r, name, vals) ], Reg r, F64)
  | Minic.Ast.Cast (ty, a) ->
      let code, v, sty = lower_expr ctx a in
      let to_ = scalar_of_base ty.Minic.Ast.base in
      let code, v = convert ctx code v ~from_:sty ~to_ in
      (code, v, to_)
  | Minic.Ast.Comma (a, b) ->
      let ca, _, _ = lower_expr ctx a in
      let cb, v, s = lower_expr ctx b in
      (ca @ cb, v, s)

(** Lower an lvalue [Index] expression into a memory reference. *)
and lower_mem_ref ctx (e : Minic.Ast.expr) : Ir.instr list * Ir.mem_ref * Ir.scalar_ty
    =
  let open Ir in
  let base, idxs = split_index e in
  let arr_name, dims, elem =
    match lookup_local ctx base with
    | Some (LArray (name, dims)) -> (
        match find_array ctx.m name with
        | Some a -> (name, dims, a.arr_elem)
        | None -> error "array object %s vanished" name)
    | Some (LReg _) -> error "scalar %s indexed as an array" base
    | None -> error "undeclared array %s" base
  in
  if List.length idxs <> List.length dims then
    error "array %s: expected %d indices, got %d" base (List.length dims)
      (List.length idxs);
  (* linearize: ((i1*d2 + i2)*d3 + i3)... *)
  let code, lin =
    List.fold_left2
      (fun (code, acc) idx_expr dim ->
        let ci, vi, si = lower_expr ctx idx_expr in
        let ci, vi = convert ctx ci vi ~from_:si ~to_:I64 in
        match acc with
        | None -> (code @ ci, Some vi)
        | Some prev ->
            let scaled = fresh_reg ctx.fn (Scalar I64) in
            let added = fresh_reg ctx.fn (Scalar I64) in
            ( code @ ci
              @ [ Def (scaled, IBin (Mul, Scalar I64, prev, IConst (Int64.of_int dim)));
                  Def (added, IBin (Add, Scalar I64, Reg scaled, vi)) ],
              Some (Reg added) ))
      ([], None)
      idxs
      (match dims with [] -> [] | _ :: rest -> 1 :: rest)
  in
  let index = match lin with Some v -> v | None -> IConst 0L in
  (code, { base = arr_name; index; stride = 1; mask = None }, elem)

(** Lower [lhs = rhs]; returns the stored value (converted to lhs type). *)
and lower_assign ctx (lhs : Minic.Ast.expr) (rhs : Minic.Ast.expr) :
    Ir.instr list * Ir.value * Ir.scalar_ty =
  let open Ir in
  let crhs, v, srhs = lower_expr ctx rhs in
  match lhs with
  | Minic.Ast.Ident name -> (
      match lookup_local ctx name with
      | Some (LReg (r, sty)) ->
          let crhs, v = convert ctx crhs v ~from_:srhs ~to_:sty in
          (crhs @ [ Def (r, Mov (Scalar sty, v)) ], v, sty)
      | Some (LArray (aname, [ 1 ])) ->
          let elem =
            match find_array ctx.m aname with
            | Some a -> a.arr_elem
            | None -> error "array object %s vanished" aname
          in
          let crhs, v = convert ctx crhs v ~from_:srhs ~to_:elem in
          ( crhs
            @ [ Store (Scalar elem,
                       { base = aname; index = IConst 0L; stride = 1; mask = None },
                       v) ],
            v, elem )
      | Some (LArray _) -> error "cannot assign to array %s" name
      | None -> error "undeclared identifier %s" name)
  | Minic.Ast.Index _ ->
      let caddr, mref, sty = lower_mem_ref ctx lhs in
      let crhs, v = convert ctx crhs v ~from_:srhs ~to_:sty in
      (crhs @ caddr @ [ Store (Scalar sty, mref, v) ], v, sty)
  | _ -> error "unsupported lvalue"

(** Emit [lv += delta] for ++/--. *)
and lower_incr ctx (lv : Minic.Ast.expr) (delta : int64) : Ir.instr list =
  let code, _, _ =
    lower_assign ctx lv
      (Minic.Ast.Binop (Minic.Ast.Add, lv, Minic.Ast.IntLit delta))
  in
  code

(* ------------------------------------------------------------------ *)
(* Loop canonicalization helpers                                        *)
(* ------------------------------------------------------------------ *)

(** Variables assigned (including ++/--) anywhere in a statement. *)
let assigned_vars (s : Minic.Ast.stmt) : string list =
  let acc = ref [] in
  let rec expr e =
    match e with
    | Minic.Ast.Assign (l, r) | Minic.Ast.OpAssign (_, l, r) ->
        (match l with Minic.Ast.Ident n -> acc := n :: !acc | _ -> ());
        expr l;
        expr r
    | Minic.Ast.Unop ((Minic.Ast.PreInc | Minic.Ast.PreDec | Minic.Ast.PostInc
                      | Minic.Ast.PostDec), a) -> (
        (match a with Minic.Ast.Ident n -> acc := n :: !acc | _ -> ());
        expr a)
    | Minic.Ast.Unop (_, a) | Minic.Ast.Cast (_, a) -> expr a
    | Minic.Ast.Binop (_, a, b) | Minic.Ast.Index (a, b) | Minic.Ast.Comma (a, b)
      ->
        expr a;
        expr b
    | Minic.Ast.Ternary (a, b, c) ->
        expr a;
        expr b;
        expr c
    | Minic.Ast.Call (_, args) -> List.iter expr args
    | Minic.Ast.IntLit _ | Minic.Ast.FloatLit _ | Minic.Ast.CharLit _
    | Minic.Ast.Ident _ ->
        ()
  in
  let stmt s =
    match s with
    | Minic.Ast.Decl (_, n, e) ->
        acc := n :: !acc;
        Option.iter expr e
    | Minic.Ast.Expr e -> expr e
    | Minic.Ast.If (c, _, _) -> expr c
    | Minic.Ast.For { cond; step; _ } ->
        Option.iter expr cond;
        Option.iter expr step
    | Minic.Ast.While { Minic.Ast.w_cond; _ } -> expr w_cond
    | Minic.Ast.Return e -> Option.iter expr e
    | Minic.Ast.Block _ | Minic.Ast.Break | Minic.Ast.Continue | Minic.Ast.Empty
      ->
        ()
  in
  Minic.Ast.iter_stmts stmt s;
  !acc

(** Identifiers read by an expression. *)
let rec expr_idents (e : Minic.Ast.expr) : string list =
  match e with
  | Minic.Ast.Ident n -> [ n ]
  | Minic.Ast.IntLit _ | Minic.Ast.FloatLit _ | Minic.Ast.CharLit _ -> []
  | Minic.Ast.Unop (_, a) | Minic.Ast.Cast (_, a) -> expr_idents a
  | Minic.Ast.Binop (_, a, b)
  | Minic.Ast.Index (a, b)
  | Minic.Ast.Assign (a, b)
  | Minic.Ast.OpAssign (_, a, b)
  | Minic.Ast.Comma (a, b) ->
      expr_idents a @ expr_idents b
  | Minic.Ast.Ternary (a, b, c) -> expr_idents a @ expr_idents b @ expr_idents c
  | Minic.Ast.Call (_, args) -> List.concat_map expr_idents args

(** Match the step expression of a candidate counted loop: returns the
    constant increment of [var], if the step has that shape. *)
let match_step (var : string) (e : Minic.Ast.expr) : int option =
  match e with
  | Minic.Ast.Unop ((Minic.Ast.PostInc | Minic.Ast.PreInc), Minic.Ast.Ident v)
    when v = var ->
      Some 1
  | Minic.Ast.Unop ((Minic.Ast.PostDec | Minic.Ast.PreDec), Minic.Ast.Ident v)
    when v = var ->
      Some (-1)
  | Minic.Ast.OpAssign (Minic.Ast.Add, Minic.Ast.Ident v, Minic.Ast.IntLit c)
    when v = var ->
      Some (Int64.to_int c)
  | Minic.Ast.OpAssign (Minic.Ast.Sub, Minic.Ast.Ident v, Minic.Ast.IntLit c)
    when v = var ->
      Some (-Int64.to_int c)
  | Minic.Ast.Assign
      (Minic.Ast.Ident v,
       Minic.Ast.Binop (Minic.Ast.Add, Minic.Ast.Ident v', Minic.Ast.IntLit c))
    when v = var && v' = var ->
      Some (Int64.to_int c)
  | Minic.Ast.Assign
      (Minic.Ast.Ident v,
       Minic.Ast.Binop (Minic.Ast.Sub, Minic.Ast.Ident v', Minic.Ast.IntLit c))
    when v = var && v' = var ->
      Some (-Int64.to_int c)
  | _ -> None

(** Match the condition [var <cmp> bound] or [bound <cmp> var]. *)
let match_cond (var : string) (e : Minic.Ast.expr) :
    (Ir.cmp * Minic.Ast.expr) option =
  let flip = function
    | Ir.CLt -> Ir.CGt
    | Ir.CLe -> Ir.CGe
    | Ir.CGt -> Ir.CLt
    | Ir.CGe -> Ir.CLe
    | c -> c
  in
  match e with
  | Minic.Ast.Binop
      ((Minic.Ast.Lt | Minic.Ast.Le | Minic.Ast.Gt | Minic.Ast.Ge) as op,
       Minic.Ast.Ident v, bound)
    when v = var && not (List.mem var (expr_idents bound)) ->
      Some (cmp_of_ast op, bound)
  | Minic.Ast.Binop
      ((Minic.Ast.Lt | Minic.Ast.Le | Minic.Ast.Gt | Minic.Ast.Ge) as op, bound,
       Minic.Ast.Ident v)
    when v = var && not (List.mem var (expr_idents bound)) ->
      Some (flip (cmp_of_ast op), bound)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                   *)
(* ------------------------------------------------------------------ *)

let gensym ctx base =
  incr ctx.gensym_counter;
  Printf.sprintf "%s.%d" base !(ctx.gensym_counter)

let rec lower_stmt ctx (s : Minic.Ast.stmt) : Ir.node list =
  let open Ir in
  match s with
  | Minic.Ast.Decl (ty, name, init) ->
      if Minic.Ast.is_array ty then begin
        (* local array: promote to a module-level array with a unique name *)
        let env = Minic.Sema.make_env ~bindings:ctx.bindings () in
        let dims = Minic.Sema.concrete_dims env ty in
        let uname = gensym ctx (ctx.fn.fn_name ^ "." ^ name) in
        ctx.m.m_arrays <-
          ctx.m.m_arrays
          @ [ { arr_name = uname; arr_elem = scalar_of_base ty.Minic.Ast.base;
                arr_dims = dims; arr_align = 16 } ];
        Hashtbl.replace ctx.locals name (LArray (uname, dims));
        []
      end
      else begin
        let sty = scalar_of_base ty.Minic.Ast.base in
        let r = fresh_reg ctx.fn (Scalar sty) in
        Hashtbl.replace ctx.locals name (LReg (r, sty));
        match init with
        | Some e ->
            let code, v, s_init = lower_expr ctx e in
            let code, v = convert ctx code v ~from_:s_init ~to_:sty in
            [ Block (code @ [ Def (r, Mov (Scalar sty, v)) ]) ]
        | None ->
            let zero = if is_float_scalar sty then FConst 0.0 else IConst 0L in
            [ Block [ Def (r, Mov (Scalar sty, zero)) ] ]
      end
  | Minic.Ast.Expr e ->
      let code, _, _ = lower_expr ctx e in
      if code = [] then [] else [ Block code ]
  | Minic.Ast.Block ss ->
      in_scope ctx (fun () -> List.concat_map (lower_stmt ctx) ss)
  | Minic.Ast.If (c, t, f) ->
      let cc, cv, cs = lower_expr ctx c in
      let b = fresh_reg ctx.fn (Scalar I1) in
      let test =
        if is_float_scalar cs then Def (b, FCmp (CNe, Scalar cs, cv, FConst 0.0))
        else Def (b, ICmp (CNe, Scalar cs, cv, IConst 0L))
      in
      let then_ = in_scope ctx (fun () -> lower_stmt ctx t) in
      let else_ =
        match f with
        | Some f -> in_scope ctx (fun () -> lower_stmt ctx f)
        | None -> []
      in
      [ If { cond = (cc @ [ test ], Reg b); then_; else_ } ]
  | Minic.Ast.For { pragma; init; cond; step; body } ->
      in_scope ctx (fun () -> lower_for ctx pragma init cond step body)
  | Minic.Ast.While { Minic.Ast.w_pragma = _; w_cond; w_body } ->
      let cond_code () =
        let cc, cv, cs = lower_expr ctx w_cond in
        let b = fresh_reg ctx.fn (Scalar I1) in
        let test =
          if is_float_scalar cs then Def (b, FCmp (CNe, Scalar cs, cv, FConst 0.0))
          else Def (b, ICmp (CNe, Scalar cs, cv, IConst 0L))
        in
        (cc @ [ test ], Reg b)
      in
      let body = in_scope ctx (fun () -> lower_stmt ctx w_body) in
      [ WhileLoop { w_cond = cond_code (); w_body = body } ]
  | Minic.Ast.Return e -> (
      match e with
      | Some e ->
          let code, v, _ = lower_expr ctx e in
          [ Return (Some (code, v)) ]
      | None -> [ Return None ])
  | Minic.Ast.Break -> [ BreakN ]
  | Minic.Ast.Continue -> [ ContinueN ]
  | Minic.Ast.Empty -> []

(** Lower a [for] loop, canonicalizing to a counted [Loop] when possible. *)
and lower_for ctx pragma init cond step body : Ir.node list =
  let open Ir in
  (* Identify the induction variable from the init statement. *)
  let candidate =
    match init with
    | Some (Minic.Ast.Decl (ty, name, Some e))
      when not (Minic.Ast.is_array ty || Minic.Ast.is_float_base ty.Minic.Ast.base)
      ->
        Some (`Decl (ty, name, e))
    | Some (Minic.Ast.Expr (Minic.Ast.Assign (Minic.Ast.Ident name, e))) ->
        Some (`Assign (name, e))
    | _ -> None
  in
  let fallback () =
    (* Non-canonical: lower as init; while(cond) { body; step; } *)
    let init_nodes =
      match init with Some s -> lower_stmt ctx s | None -> []
    in
    let cond_expr =
      match cond with Some c -> c | None -> Minic.Ast.IntLit 1L
    in
    let cc, cv, cs = lower_expr ctx cond_expr in
    let b = fresh_reg ctx.fn (Scalar I1) in
    let test =
      if is_float_scalar cs then Def (b, FCmp (CNe, Scalar cs, cv, FConst 0.0))
      else Def (b, ICmp (CNe, Scalar cs, cv, IConst 0L))
    in
    let body_nodes = lower_stmt ctx body in
    let step_nodes =
      match step with
      | Some e ->
          let code, _, _ = lower_expr ctx e in
          if code = [] then [] else [ Block code ]
      | None -> []
    in
    init_nodes
    @ [ WhileLoop { w_cond = (cc @ [ test ], Reg b); w_body = body_nodes @ step_nodes } ]
  in
  match (candidate, cond, step) with
  | Some cand, Some cond_e, Some step_e -> (
      let var_name =
        match cand with `Decl (_, n, _) -> n | `Assign (n, _) -> n
      in
      match (match_cond var_name cond_e, match_step var_name step_e) with
      | Some (cmpop, bound_e), Some stepc when stepc <> 0 ->
          (* the bound and start must be loop-invariant *)
          let mutated = assigned_vars body in
          let bound_ids = expr_idents bound_e in
          if List.exists (fun v -> List.mem v mutated) bound_ids then fallback ()
          else begin
            (* declare/locate the induction variable register *)
            let var_reg, start_e =
              match cand with
              | `Decl (ty, name, e) ->
                  let sty = scalar_of_base ty.Minic.Ast.base in
                  let r = fresh_reg ctx.fn (Scalar sty) in
                  Hashtbl.replace ctx.locals name (LReg (r, sty));
                  (r, e)
              | `Assign (name, e) -> (
                  match lookup_local ctx name with
                  | Some (LReg (r, _)) -> (r, e)
                  | _ -> error "undeclared loop variable %s" name)
            in
            let var_sty =
              match reg_ty ctx.fn var_reg with
              | Scalar s -> s
              | Vec _ -> assert false
            in
            let ci, vi, si = lower_expr ctx start_e in
            let ci, vi = convert ctx ci vi ~from_:si ~to_:var_sty in
            let cb, vb, sb = lower_expr ctx bound_e in
            let cb, vb = convert ctx cb vb ~from_:sb ~to_:var_sty in
            let body_nodes = lower_stmt ctx body in
            let id = !(ctx.loop_counter) in
            incr ctx.loop_counter;
            [ Loop
                { l_id = id; l_var = var_reg; l_init = (ci, vi);
                  l_bound = (cb, vb); l_cmp = cmpop; l_step = stepc;
                  l_pragma = pragma; l_body = body_nodes;
                  l_trip_hint = None } ]
          end
      | _ -> fallback ())
  | _ -> fallback ()

(* ------------------------------------------------------------------ *)
(* Program lowering                                                     *)
(* ------------------------------------------------------------------ *)

(** Lower a whole program. [bindings] resolves symbolic constants in array
    bounds and loop bounds. Array-typed parameters get module-level storage;
    an unsized leading dimension defaults to [default_param_dim]. *)
let lower_program ?(bindings = []) ?(default_param_dim = 1024)
    (prog : Minic.Ast.program) : Ir.modul =
  let m = { Ir.m_arrays = []; m_funcs = [] } in
  let loop_counter = ref 0 in
  let gensym_counter = ref 0 in
  let globals = Hashtbl.create 16 in
  (* First pass: global arrays and scalars. Global scalars become
     single-element arrays so functions can share them. *)
  List.iter
    (function
      | Minic.Ast.Global g ->
          let env = Minic.Sema.make_env ~bindings () in
          let elem = scalar_of_base g.Minic.Ast.g_ty.Minic.Ast.base in
          let dims =
            if Minic.Ast.is_array g.Minic.Ast.g_ty then
              Minic.Sema.concrete_dims env g.Minic.Ast.g_ty
            else [ 1 ]
          in
          let align =
            List.fold_left
              (fun acc a ->
                match a with Minic.Ast.Aligned n -> max acc n | _ -> acc)
              16 g.Minic.Ast.g_attrs
          in
          m.Ir.m_arrays <-
            m.Ir.m_arrays
            @ [ { Ir.arr_name = g.Minic.Ast.g_name; arr_elem = elem;
                  arr_dims = dims; arr_align = align } ];
          Hashtbl.replace globals g.Minic.Ast.g_name
            (LArray (g.Minic.Ast.g_name, dims),
             not (Minic.Ast.is_array g.Minic.Ast.g_ty))
      | Minic.Ast.Func _ -> ())
    prog;
  (* Second pass: functions. *)
  List.iter
    (function
      | Minic.Ast.Global _ -> ()
      | Minic.Ast.Func f ->
          let scalar_params, array_params =
            List.partition
              (fun p -> not (Minic.Ast.is_array p.Minic.Ast.p_ty))
              f.Minic.Ast.f_params
          in
          let fn =
            Ir.new_func f.Minic.Ast.f_name
              (List.map
                 (fun p ->
                   (p.Minic.Ast.p_name,
                    scalar_of_base p.Minic.Ast.p_ty.Minic.Ast.base))
                 scalar_params)
          in
          let locals = Hashtbl.create 16 in
          Hashtbl.iter
            (fun name (local, is_scalar) ->
              ignore is_scalar;
              Hashtbl.replace locals name local)
            globals;
          List.iter
            (fun (name, r, sty) -> Hashtbl.replace locals name (LReg (r, sty)))
            fn.Ir.fn_params;
          (* array params: module storage named <fn>.<param> *)
          List.iter
            (fun p ->
              let env = Minic.Sema.make_env ~bindings () in
              let dims =
                List.map
                  (function
                    | Some e -> Minic.Sema.eval_const env e
                    | None -> default_param_dim)
                  p.Minic.Ast.p_ty.Minic.Ast.dims
              in
              let uname = f.Minic.Ast.f_name ^ "." ^ p.Minic.Ast.p_name in
              m.Ir.m_arrays <-
                m.Ir.m_arrays
                @ [ { Ir.arr_name = uname;
                      arr_elem = scalar_of_base p.Minic.Ast.p_ty.Minic.Ast.base;
                      arr_dims = dims; arr_align = 16 } ];
              Hashtbl.replace locals p.Minic.Ast.p_name (LArray (uname, dims)))
            array_params;
          let ctx =
            { m; fn; bindings; locals; loop_counter; gensym_counter;
              default_param_dim }
          in
          (* Global scalar loads: accessing them as scalars means load/store
             through their 1-element array; rewrite via locals happens lazily
             in lower_expr — here we instead pre-load them into registers is
             unsound if another function writes them, so we keep the array
             form. lower_expr handles LArray-with-dims=[1] idents below. *)
          let body = List.concat_map (lower_stmt ctx) f.Minic.Ast.f_body in
          fn.Ir.fn_body <- body;
          m.Ir.m_funcs <- m.Ir.m_funcs @ [ fn ])
    prog;
  m
