(** A bytecode VM for the IR: the fast execution engine behind always-on
    translation validation.

    {!Ir_interp} is the semantic reference — boxed values, Hashtbl-backed
    memory, exception-driven control flow — and stays that way.  This
    module compiles an [Ir.modul]'s kernel function once into a flat
    [op array]: registers resolved to integer slots in unboxed
    [int array]/[float array] planes (integers as native 63-bit ints with
    a runtime {!Deopt} escape for values a native int cannot represent —
    see the note above [run]), arrays resolved to plane indices,
    branches and loops resolved to jumps, vector operands read lane-wise
    out of preallocated per-register buffers that are reused across
    iterations (the tree walker allocates a fresh array per vector op per
    iteration).

    {b Bit-identity contract.}  A compiled program must be observationally
    identical to the tree walker: exact integer memory, exact float bits
    (same operations in the same order, including F32 rounding and
    narrow-int wrap), traps carrying the same messages and faulting
    addresses, and the same fuel accounting — exactly one [steps] tick per
    executed {!Ir.instr}, ticked before the instruction evaluates, so
    ["step budget exceeded"] fires on the same instruction.  Control-flow
    ops (jumps, loop heads, loop steps) never tick, mirroring the tree
    walker where loop control lives outside [exec_instr].

    The compiler is deliberately conservative: any construct whose slot
    semantics could diverge from the dynamically-typed tree walker — a
    register assigned conflicting shapes, a possibly-undefined vector read
    whose [VI 0L] default behaves differently from a zeroed buffer, a
    width mismatch, an unknown array or builtin — makes {!compile} return
    [None] and the caller falls back to {!Ir_interp}, which is correct by
    definition.  Lowered code never hits these cases in practice; the
    fallback counter in {!stats} watches for regressions.

    Compiled code is cached content-addressed in first-commit-wins shards
    (like [Verify.Tv] verdicts) with FIFO eviction, so a 35-action sweep
    compiles each transformed module once and the scalar reference once,
    and a [--jobs N] sweep caches exactly what [--jobs 1] caches. *)

type shape = SInt | SFloat | VInt of int | VFloat of int

(* ------------------------------------------------------------------ *)
(* Operand encodings (coercions baked at compile time)                  *)
(* ------------------------------------------------------------------ *)

(* [as_int]-context operand: immediate, int slot, or float slot read
   through Int64.of_float — exactly the tree walker's coercion.  Integer
   values live in native OCaml ints (the true two's-complement value,
   which must fit 63 bits — the runtime deopts to the tree walker the
   moment an I64 operation would need the 64th bit, see {!Deopt}). *)
type iarg = AIimm of int | AIslot of int | AIfslot of int

type farg = AFimm of float | AFslot of int | AFislot of int

(* vector-int operand: a vector slot, or a scalar splat (as_vec_i) *)
type viarg = ViSlot of int | ViSplat of iarg

type vfarg = VfSlot of int | VfSplat of farg

(* a resolved memory plane: index into the int or float array plane *)
type marg = MemI of int | MemF of int

type op =
  (* instruction-derived ops: each ticks the fuel counter exactly once *)
  | ONop
  | OIBin of int * Ir.ibin * Ir.scalar_ty * iarg * iarg
  | OFBin of int * Ir.fbin * Ir.scalar_ty * farg * farg
  | OICmpS of int * Ir.cmp * iarg * iarg
  | OFCmpS of int * Ir.cmp * farg * farg
  | OSelI of int * iarg * iarg * iarg
  | OSelF of int * iarg * farg * farg
  | OCastII of int * Ir.scalar_ty * iarg  (** dst <- wrap_int sty (fetch) *)
  | OCastFF of int * Ir.scalar_ty * farg  (** dst <- wrap_f sty (fetch) *)
  | OExtractI of int * Ir.scalar_ty * int * int  (** dst, sty, vslot, lane *)
  | OExtractF of int * Ir.scalar_ty * int * int
  | OReduceI of int * Ir.reduce_op * Ir.scalar_ty * int
  | OReduceF of int * Ir.reduce_op * Ir.scalar_ty * int
  | OCall1F of int * (float -> float) * farg
  | OCall2F of int * (float -> float -> float) * farg * farg
  | OCallAbs of int * iarg
  | OLoadSI of int * Ir.scalar_ty * int * string * iarg
      (** dst, sty, int-plane idx, array name (trap messages), index *)
  | OLoadSF of int * Ir.scalar_ty * int * string * iarg
  | OLoadSIM of int * Ir.scalar_ty * int * string * iarg * iarg  (** + mask *)
  | OLoadSFM of int * Ir.scalar_ty * int * string * iarg * iarg
  | OStoreSI of Ir.scalar_ty * int * string * iarg * iarg
  | OStoreSF of Ir.scalar_ty * int * string * iarg * farg
  | OStoreSIM of Ir.scalar_ty * int * string * iarg * iarg * iarg
  | OStoreSFM of Ir.scalar_ty * int * string * iarg * farg * iarg
  | OLoadVI of int * Ir.scalar_ty * marg * string * iarg * int * viarg option
      (** dstv, sty, plane, name, base index, stride, mask *)
  | OLoadVF of int * Ir.scalar_ty * marg * string * iarg * int * viarg option
  | OStoreVI of Ir.scalar_ty * marg * string * iarg * int * int * viarg * viarg option
      (** sty, plane, name, base index, stride, width, src lanes, mask *)
  | OStoreVF of Ir.scalar_ty * marg * string * iarg * int * int * vfarg * viarg option
  | OIBinV of int * Ir.ibin * Ir.scalar_ty * viarg * viarg
  | OFBinV of int * Ir.fbin * Ir.scalar_ty * vfarg * vfarg
  | OICmpV of int * Ir.cmp * viarg * viarg
  | OFCmpV of int * Ir.cmp * vfarg * vfarg
  | OSelVI of int * viarg * viarg * viarg
  | OSelVF of int * viarg * vfarg * vfarg
  | OCastVII of int * Ir.scalar_ty * viarg  (** lane-wise wrap_int *)
  | OCastVIF of int * Ir.scalar_ty * vfarg  (** FpToSi lanes *)
  | OCastVFI of int * Ir.scalar_ty * viarg  (** SiToFp lanes *)
  | OCastVFF of int * Ir.scalar_ty * vfarg  (** lane-wise wrap_f *)
  | OSplatVI of int * Ir.scalar_ty * iarg  (** wrap once, fill *)
  | OSplatVF of int * farg  (** Splat semantics: no wrap on float fill *)
  | OMovVF of int * Ir.scalar_ty * farg  (** Mov semantics: wrap_f fill *)
  | OCopyVI of int * int
  | OCopyVF of int * int
  | OStrideV of int * Ir.scalar_ty * iarg * int
  (* control ops: never tick *)
  | OSetI of int * iarg
      (** raw un-ticked int move — the loop protocol's [set_reg l_var]
          and bound coercion, which live outside [exec_instr] in the
          tree walker and so never count against the fuel budget *)
  | OJmp of int
  | OJz of iarg * int  (** jump when the fetched condition is zero *)
  | OLoopHead of int * Ir.cmp * int * int  (** lvar slot, cmp, bound slot, exit pc *)
  | OLoopStep of int * Ir.scalar_ty * int * int  (** lvar slot, sty, step, head pc *)
  | ORetNone
  | ORetI of iarg
  | ORetF of farg
  | ORetVI of int
  | ORetVF of int

type program = {
  p_ops : op array;
  p_nints : int;
  p_nflts : int;
  p_wveci : int array;  (** width of each int vector slot *)
  p_wvecf : int array;
  p_params : (bool * int * int) list;  (** is_float, slot, param position *)
  p_arrays : (string * bool) array;  (** binding order; bool = float plane *)
}

type outcome = { o_result : Ir_interp.rvalue_v option; o_steps : int }

(* ------------------------------------------------------------------ *)
(* Compilation                                                          *)
(* ------------------------------------------------------------------ *)

exception Unsupported
(* internal: some construct's slot semantics could diverge from the tree
   walker; the whole function falls back to Ir_interp *)

(* Growable op buffer with backpatching *)
type buf = { mutable ops : op array; mutable len : int }

let emit (b : buf) (op : op) : int =
  if b.len >= Array.length b.ops then begin
    let bigger = Array.make (2 * Array.length b.ops) ONop in
    Array.blit b.ops 0 bigger 0 b.len;
    b.ops <- bigger
  end;
  b.ops.(b.len) <- op;
  b.len <- b.len + 1;
  b.len - 1

let patch (b : buf) (i : int) (op : op) : unit = b.ops.(i) <- op

type loop_frame = { mutable brks : int list; mutable conts : int list }

type cstate = {
  fn : Ir.func;
  shapes : shape array;
  slot_of : int array;  (* reg -> slot within its shape's plane *)
  mutable nints : int;
  mutable nflts : int;
  mutable wveci : int list;  (* reversed widths *)
  mutable wvecf : int list;
  arr_tbl : (string, bool * int) Hashtbl.t;  (* name -> (is_float, plane idx) *)
  b : buf;
  da : bool array;  (* definite assignment, for Extract/Reduce sources *)
  mutable frames : loop_frame list;
}

(* ---- shape inference (fixpoint over all assignments) ---- *)

let join (a : shape option) (b : shape) : shape option =
  match a with
  | None -> Some b
  | Some a -> if a = b then Some a else raise Unsupported

let value_shape (shapes : shape option array) (v : Ir.value) : shape option =
  match v with
  | Ir.IConst _ -> Some SInt
  | Ir.FConst _ -> Some SFloat
  | Ir.Reg r -> shapes.(r)

let is_f1 = function
  | "sqrt" | "sqrtf" | "fabs" | "fabsf" | "exp" | "log" | "sin" | "cos"
  | "floor" | "ceil" ->
      true
  | _ -> false

let is_f2 = function "pow" | "fmax" | "fmin" -> true | _ -> false

let rvalue_shape (m : Ir.modul) (shapes : shape option array)
    (rv : Ir.rvalue) : shape option =
  let open Ir in
  let of_ty = function
    | Scalar s -> if is_float_scalar s then SFloat else SInt
    | Vec (n, s) -> if is_float_scalar s then VFloat n else VInt n
  in
  match rv with
  | IBin (_, ty, _, _) | ICmp (_, ty, _, _) -> (
      (* ICmp's ty is the operand type; the result is integral either way *)
      match ty with Scalar _ -> Some SInt | Vec (n, _) -> Some (VInt n))
  | FCmp (_, ty, _, _) -> (
      match ty with Scalar _ -> Some SInt | Vec (n, _) -> Some (VInt n))
  | FBin (_, ty, _, _) -> (
      match ty with Scalar _ -> Some SFloat | Vec (n, _) -> Some (VFloat n))
  | Select (ty, _, _, _) -> Some (of_ty ty)
  | Cast (k, _, to_, v) -> (
      let float_result =
        match k with
        | SiToFp | FpExt | FpTrunc -> true
        | ZExt | SExt | Trunc | FpToSi -> false
      in
      match value_shape shapes v with
      | None -> None
      | Some (SInt | SFloat) -> (
          (* scalar input: a vector-typed cast broadcasts to the target
             width; a scalar-typed cast stays scalar *)
          match to_ with
          | Scalar _ -> Some (if float_result then SFloat else SInt)
          | Vec (n, _) -> Some (if float_result then VFloat n else VInt n))
      | Some (VInt w | VFloat w) ->
          (* vector input: lanes map one-to-one; the result keeps the
             INPUT width (the tree walker never width-checks casts) *)
          Some (if float_result then VFloat w else VInt w))
  | Load (ty, mref) -> (
      match find_array m mref.base with
      | None -> raise Unsupported
      | Some a -> (
          let arr_float = is_float_scalar a.arr_elem in
          match ty with
          | Scalar s ->
              (* scalar loads dispatch on the ARRAY kind; a masked load's
                 masked-off default uses the instruction kind, so the two
                 must agree for the dest shape to be static *)
              (match mref.mask with
              | Some _ when is_float_scalar s <> arr_float ->
                  raise Unsupported
              | _ -> ());
              Some (if arr_float then SFloat else SInt)
          | Vec (n, s) ->
              (* vector loads coerce each lane to the INSTRUCTION kind *)
              Some (if is_float_scalar s then VFloat n else VInt n)))
  | Splat (ty, v) -> (
      match ty with
      | Scalar _ -> value_shape shapes v  (* passthrough *)
      | Vec (n, s) -> Some (if is_float_scalar s then VFloat n else VInt n))
  | Extract (_, v, _) -> (
      match value_shape shapes v with
      | None -> None
      | Some (VInt _) -> Some SInt
      | Some (VFloat _) -> Some SFloat
      | Some (SInt | SFloat) -> raise Unsupported)
  | Reduce (_, _, v) -> (
      match value_shape shapes v with
      | None -> None
      | Some (VInt _) -> Some SInt
      | Some (VFloat _) -> Some SFloat
      | Some (SInt | SFloat) -> raise Unsupported)
  | Mov (ty, v) -> (
      match value_shape shapes v with
      | None -> None
      | Some ((VInt _ | VFloat _) as s) -> Some s  (* passthrough *)
      | Some ((SInt | SFloat) as sc) -> (
          match ty with
          | Scalar _ -> Some sc
          | Vec (n, _) -> Some (if sc = SFloat then VFloat n else VInt n)))
  | Stride (ty, v, _) -> (
      match ty with
      | Scalar _ -> value_shape shapes v
      | Vec (n, s) ->
          if is_float_scalar s then raise Unsupported else Some (VInt n))

let infer_shapes (m : Ir.modul) (fn : Ir.func) : shape array =
  let shapes : shape option array = Array.make (max 1 fn.Ir.fn_nregs) None in
  List.iter
    (fun (_, r, sty) ->
      shapes.(r) <-
        join shapes.(r) (if Ir.is_float_scalar sty then SFloat else SInt))
    fn.Ir.fn_params;
  (* loop vars: the loop protocol stores VI (wrap ...) every iteration *)
  Ir.iter_loops (fun l -> shapes.(l.Ir.l_var) <- join shapes.(l.Ir.l_var) SInt)
    fn.Ir.fn_body;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= fn.Ir.fn_nregs + 2 do
    changed := false;
    incr rounds;
    Ir.fold_instrs
      (fun () i ->
        match i with
        | Ir.Def (r, rv) -> (
            match rvalue_shape m shapes rv with
            | None -> ()
            | Some s ->
                let j = join shapes.(r) s in
                if j <> shapes.(r) then begin
                  shapes.(r) <- j;
                  changed := true
                end)
        | Ir.CallI (Some r, name, _) ->
            let s = if name = "abs" then SInt else SFloat in
            let j = join shapes.(r) s in
            if j <> shapes.(r) then begin
              shapes.(r) <- j;
              changed := true
            end
        | Ir.CallI (None, _, _) | Ir.Store _ -> ())
      () fn.Ir.fn_body;
    (* loop init values are stored raw into the loop var *)
    Ir.iter_loops
      (fun l ->
        let _, iv = l.Ir.l_init in
        match value_shape shapes iv with
        | None -> ()
        | Some s ->
            let j = join shapes.(l.Ir.l_var) s in
            if j <> shapes.(l.Ir.l_var) then begin
              shapes.(l.Ir.l_var) <- j;
              changed := true
            end)
      fn.Ir.fn_body
  done;
  (* a register never assigned always holds the tree walker's VI 0L: an
     SInt slot zeroed at run start behaves identically in every context
     the compiler accepts *)
  Array.map (function Some s -> s | None -> SInt) shapes

(* ---- operand compilation ---- *)

(* The runtime's integer planes hold native OCaml ints carrying the true
   64-bit value; a literal that needs the 64th bit cannot keep that
   invariant, so the module falls back to the tree walker. *)
let imm_of (i : int64) : int =
  let n = Int64.to_int i in
  if Int64.of_int n <> i then raise Unsupported;
  n

let iarg_of (c : cstate) (v : Ir.value) : iarg =
  match v with
  | Ir.IConst i -> AIimm (imm_of i)
  | Ir.FConst f -> AIimm (imm_of (Int64.of_float f))
  | Ir.Reg r -> (
      match c.shapes.(r) with
      | SInt -> AIslot c.slot_of.(r)
      | SFloat -> AIfslot c.slot_of.(r)
      | VInt _ | VFloat _ -> raise Unsupported)

let farg_of (c : cstate) (v : Ir.value) : farg =
  match v with
  | Ir.IConst i -> AFimm (Int64.to_float i)
  | Ir.FConst f -> AFimm f
  | Ir.Reg r -> (
      match c.shapes.(r) with
      | SFloat -> AFslot c.slot_of.(r)
      | SInt -> AFislot c.slot_of.(r)
      | VInt _ | VFloat _ -> raise Unsupported)

let viarg_of (c : cstate) (n : int) (v : Ir.value) : viarg =
  match v with
  | Ir.IConst i -> ViSplat (AIimm (imm_of i))
  | Ir.FConst _ -> raise Unsupported  (* as_vec_i of VF always traps *)
  | Ir.Reg r -> (
      match c.shapes.(r) with
      | VInt w -> if w <> n then raise Unsupported else ViSlot c.slot_of.(r)
      | SInt -> ViSplat (AIslot c.slot_of.(r))
      | SFloat | VFloat _ -> raise Unsupported)

let vfarg_of (c : cstate) (n : int) (v : Ir.value) : vfarg =
  match v with
  | Ir.IConst i -> VfSplat (AFimm (Int64.to_float i))
  | Ir.FConst f -> VfSplat (AFimm f)
  | Ir.Reg r -> (
      match c.shapes.(r) with
      | VFloat w -> if w <> n then raise Unsupported else VfSlot c.slot_of.(r)
      | SFloat -> VfSplat (AFslot c.slot_of.(r))
      | SInt -> VfSplat (AFislot c.slot_of.(r))
      | VInt _ -> raise Unsupported)

let fresh_int (c : cstate) : int =
  let s = c.nints in
  c.nints <- s + 1;
  s

let fresh_flt (c : cstate) : int =
  let s = c.nflts in
  c.nflts <- s + 1;
  s

let vec_width (c : cstate) (r : Ir.reg) : int =
  match c.shapes.(r) with
  | VInt w | VFloat w -> w
  | SInt | SFloat -> raise Unsupported

let arr_of (c : cstate) (base : string) : bool * int =
  match Hashtbl.find_opt c.arr_tbl base with
  | Some x -> x
  | None -> raise Unsupported  (* unknown array: let the tree walker trap *)

(* the only vector source whose undefined-read behavior differs from a
   zeroed buffer: Extract/Reduce of an undefined register sees the tree
   walker's VI 0L and traps "from scalar"; require definite assignment *)
let da_vec_src (c : cstate) (v : Ir.value) : int =
  match v with
  | Ir.Reg r when c.da.(r) -> c.slot_of.(r)
  | _ -> raise Unsupported

let builtin_fn1 = function
  | "sqrt" | "sqrtf" -> sqrt
  | "fabs" | "fabsf" -> abs_float
  | "exp" -> exp
  | "log" -> fun x -> if x <= 0.0 then 0.0 else log x
  | "sin" -> sin
  | "cos" -> cos
  | "floor" -> floor
  | "ceil" -> ceil
  | _ -> raise Unsupported

let builtin_fn2 = function
  | "pow" -> ( ** )
  | "fmax" -> fun (a : float) b -> Stdlib.max a b
  | "fmin" -> fun (a : float) b -> Stdlib.min a b
  | _ -> raise Unsupported

let emit_def (c : cstate) (r : Ir.reg) (rv : Ir.rvalue) : unit =
  let open Ir in
  let d = c.slot_of.(r) in
  let op =
    match rv with
    | IBin (op, Scalar s, a, b) -> OIBin (d, op, s, iarg_of c a, iarg_of c b)
    | IBin (op, Vec (n, s), a, b) ->
        OIBinV (d, op, s, viarg_of c n a, viarg_of c n b)
    | FBin (op, Scalar s, a, b) -> OFBin (d, op, s, farg_of c a, farg_of c b)
    | FBin (op, Vec (n, s), a, b) ->
        OFBinV (d, op, s, vfarg_of c n a, vfarg_of c n b)
    | ICmp (op, Scalar _, a, b) -> OICmpS (d, op, iarg_of c a, iarg_of c b)
    | ICmp (op, Vec (n, _), a, b) ->
        OICmpV (d, op, viarg_of c n a, viarg_of c n b)
    | FCmp (op, Scalar _, a, b) -> OFCmpS (d, op, farg_of c a, farg_of c b)
    | FCmp (op, Vec (n, _), a, b) ->
        OFCmpV (d, op, vfarg_of c n a, vfarg_of c n b)
    | Select (Scalar s, cnd, a, b) ->
        if is_float_scalar s then
          OSelF (d, iarg_of c cnd, farg_of c a, farg_of c b)
        else OSelI (d, iarg_of c cnd, iarg_of c a, iarg_of c b)
    | Select (Vec (n, s), cnd, a, b) ->
        if is_float_scalar s then
          OSelVF (d, viarg_of c n cnd, vfarg_of c n a, vfarg_of c n b)
        else OSelVI (d, viarg_of c n cnd, viarg_of c n a, viarg_of c n b)
    | Cast (k, _, to_, v) -> (
        let sty = elem_ty to_ in
        let in_shape =
          match v with
          | IConst _ -> SInt
          | FConst _ -> SFloat
          | Reg r -> c.shapes.(r)
        in
        (* kind-mismatched casts trap when the input is defined but not
           when it is the tree walker's undefined VI 0L, so only the
           statically-clean combinations compile; the rest fall back *)
        match (k, in_shape) with
        | (ZExt | SExt | Trunc), SInt -> (
            match to_ with
            | Scalar _ -> OCastII (d, sty, iarg_of c v)
            | Vec (_, _) -> OCastVII (d, sty, ViSplat (iarg_of c v)))
        | SiToFp, SInt -> (
            match to_ with
            | Scalar _ -> OCastFF (d, sty, farg_of c v)
            | Vec (_, _) -> OCastVFF (d, sty, VfSplat (farg_of c v)))
        | (FpExt | FpTrunc), SFloat -> (
            match to_ with
            | Scalar _ -> OCastFF (d, sty, farg_of c v)
            | Vec (_, _) -> OCastVFF (d, sty, VfSplat (farg_of c v)))
        | FpToSi, SFloat -> (
            match to_ with
            | Scalar _ -> OCastII (d, sty, iarg_of c v)
            | Vec (_, _) -> OCastVII (d, sty, ViSplat (iarg_of c v)))
        | (ZExt | SExt | Trunc), VInt w -> OCastVII (d, sty, viarg_of c w v)
        | SiToFp, VInt w -> OCastVFI (d, sty, viarg_of c w v)
        | (FpExt | FpTrunc), VFloat w -> OCastVFF (d, sty, vfarg_of c w v)
        | FpToSi, VFloat w -> OCastVIF (d, sty, vfarg_of c w v)
        | _ -> raise Unsupported)
    | Load (ty, mref) -> (
        let arr_float, plane = arr_of c mref.base in
        let idx = iarg_of c mref.index in
        match ty with
        | Scalar s -> (
            match mref.mask with
            | None ->
                if arr_float then OLoadSF (d, s, plane, mref.base, idx)
                else OLoadSI (d, s, plane, mref.base, idx)
            | Some mv ->
                (* shape inference already required instr kind = array kind *)
                let mk = iarg_of c mv in
                if arr_float then OLoadSFM (d, s, plane, mref.base, idx, mk)
                else OLoadSIM (d, s, plane, mref.base, idx, mk))
        | Vec (n, s) ->
            let mask = Option.map (viarg_of c n) mref.mask in
            let ma = if arr_float then MemF plane else MemI plane in
            if is_float_scalar s then
              OLoadVF (d, s, ma, mref.base, idx, mref.stride, mask)
            else OLoadVI (d, s, ma, mref.base, idx, mref.stride, mask))
    | Splat (Scalar _, v) -> (
        (* passthrough: eval_value with no coercion *)
        match v with
        | IConst i -> OCastII (d, I64, AIimm (imm_of i))
        | FConst f -> OCastFF (d, F64, AFimm f)
        | Reg r -> (
            match c.shapes.(r) with
            | SInt -> OCastII (d, I64, AIslot c.slot_of.(r))
            | SFloat -> OCastFF (d, F64, AFslot c.slot_of.(r))
            | VInt _ -> OCopyVI (d, c.slot_of.(r))
            | VFloat _ -> OCopyVF (d, c.slot_of.(r))))
    | Splat (Vec (_, s), v) ->
        if is_float_scalar s then OSplatVF (d, farg_of c v)
        else OSplatVI (d, s, iarg_of c v)
    | Extract (s, v, lane) -> (
        let src = da_vec_src c v in
        match v with
        | Reg r -> (
            let w = vec_width c r in
            if lane >= w then raise Unsupported;
            match c.shapes.(r) with
            | VInt _ -> OExtractI (d, s, src, lane)
            | VFloat _ -> OExtractF (d, s, src, lane)
            | _ -> raise Unsupported)
        | _ -> raise Unsupported)
    | Reduce (op, s, v) -> (
        let src = da_vec_src c v in
        match v with
        | Reg r -> (
            match c.shapes.(r) with
            | VInt _ -> OReduceI (d, op, s, src)
            | VFloat _ -> OReduceF (d, op, s, src)
            | _ -> raise Unsupported)
        | _ -> raise Unsupported)
    | Mov (ty, v) -> (
        let in_shape =
          match v with
          | IConst _ -> SInt
          | FConst _ -> SFloat
          | Reg r -> c.shapes.(r)
        in
        match (ty, in_shape) with
        | Scalar s, SInt -> OCastII (d, s, iarg_of c v)
        | Scalar s, SFloat -> OCastFF (d, s, farg_of c v)
        | Vec (_, s), SInt -> OSplatVI (d, s, iarg_of c v)
        | Vec (_, s), SFloat -> OMovVF (d, s, farg_of c v)
        | _, VInt _ -> OCopyVI (d, c.slot_of.(match v with Reg r -> r | _ -> assert false))
        | _, VFloat _ -> OCopyVF (d, c.slot_of.(match v with Reg r -> r | _ -> assert false)))
    | Stride (Scalar _, v, _) -> (
        (* scalar Stride is an eval_value passthrough, like scalar Splat *)
        match v with
        | IConst i -> OCastII (d, I64, AIimm (imm_of i))
        | FConst f -> OCastFF (d, F64, AFimm f)
        | Reg r -> (
            match c.shapes.(r) with
            | SInt -> OCastII (d, I64, AIslot c.slot_of.(r))
            | SFloat -> OCastFF (d, F64, AFslot c.slot_of.(r))
            | VInt _ -> OCopyVI (d, c.slot_of.(r))
            | VFloat _ -> OCopyVF (d, c.slot_of.(r))))
    | Stride (Vec (_, s), v, step) ->
        if is_float_scalar s then raise Unsupported
        else OStrideV (d, s, iarg_of c v, step)
  in
  ignore (emit c.b op)

let emit_instr (c : cstate) (i : Ir.instr) : unit =
  let open Ir in
  (match i with
  | Def (r, rv) ->
      emit_def c r rv;
      c.da.(r) <- true
  | Store (ty, mref, v) -> (
      let arr_float, plane = arr_of c mref.base in
      let idx = iarg_of c mref.index in
      match ty with
      | Scalar s ->
          (* the stored value is coerced by the ARRAY kind *)
          let op =
            match (arr_float, mref.mask) with
            | false, None -> OStoreSI (s, plane, mref.base, idx, iarg_of c v)
            | true, None -> OStoreSF (s, plane, mref.base, idx, farg_of c v)
            | false, Some mv ->
                OStoreSIM (s, plane, mref.base, idx, iarg_of c v, iarg_of c mv)
            | true, Some mv ->
                OStoreSFM (s, plane, mref.base, idx, farg_of c v, iarg_of c mv)
          in
          ignore (emit c.b op)
      | Vec (n, s) ->
          (* the source is coerced by the INSTRUCTION kind, each lane then
             stored by the array kind *)
          let mask = Option.map (viarg_of c n) mref.mask in
          let ma = if arr_float then MemF plane else MemI plane in
          let op =
            if is_float_scalar s then
              OStoreVF (s, ma, mref.base, idx, mref.stride, n, vfarg_of c n v, mask)
            else
              OStoreVI (s, ma, mref.base, idx, mref.stride, n, viarg_of c n v, mask)
          in
          ignore (emit c.b op))
  | CallI (ro, name, args) ->
      let dst_f () =
        match ro with Some r -> c.slot_of.(r) | None -> fresh_flt c
      in
      let op =
        if is_f1 name then
          match args with
          | [ a ] -> OCall1F (dst_f (), builtin_fn1 name, farg_of c a)
          | _ -> raise Unsupported  (* arity trap: fall back *)
        else if is_f2 name then
          match args with
          | [ a; b ] -> OCall2F (dst_f (), builtin_fn2 name, farg_of c a, farg_of c b)
          | _ -> raise Unsupported
        else if name = "abs" then
          match args with
          | [ a ] -> (
              match ro with
              | Some r -> OCallAbs (c.slot_of.(r), iarg_of c a)
              | None -> OCallAbs (fresh_int c, iarg_of c a))
          | _ -> raise Unsupported
        else raise Unsupported  (* unknown builtin traps: fall back *)
      in
      ignore (emit c.b op);
      match ro with Some r -> c.da.(r) <- true | None -> ())

let rec emit_node (c : cstate) (node : Ir.node) : unit =
  let open Ir in
  match node with
  | Block is -> List.iter (emit_instr c) is
  | If { cond = ci, cv; then_; else_ } ->
      List.iter (emit_instr c) ci;
      let jz = emit c.b (OJz (iarg_of c cv, -1)) in
      let da0 = Array.copy c.da in
      List.iter (emit_node c) then_;
      let da_then = Array.copy c.da in
      Array.blit da0 0 c.da 0 (Array.length da0);
      if else_ = [] then begin
        patch c.b jz (OJz (iarg_of c cv, c.b.len))
        (* after an else-less If only the pre-state is definite *)
      end
      else begin
        let jend = emit c.b (OJmp (-1)) in
        patch c.b jz (OJz (iarg_of c cv, c.b.len));
        List.iter (emit_node c) else_;
        patch c.b jend (OJmp c.b.len);
        (* definite after = definite on both paths *)
        Array.iteri (fun i v -> c.da.(i) <- v && da_then.(i)) c.da
      end
  | Loop l ->
      let ii, iv = l.l_init and bi, bv = l.l_bound in
      List.iter (emit_instr c) ii;
      let lv = c.slot_of.(l.l_var) in
      (* set_reg l_var init_v stores the raw value; the loop var's shape
         is SInt (joined with the init value's shape), so a plain copy *)
      ignore (emit c.b (OSetI (lv, iarg_of c iv)));
      c.da.(l.l_var) <- true;
      List.iter (emit_instr c) bi;
      let bt = fresh_int c in
      ignore (emit c.b (OSetI (bt, iarg_of c bv)));
      let sty =
        match Ir.reg_ty c.fn l.l_var with Scalar s -> s | Vec _ -> I64
      in
      let head = emit c.b (OLoopHead (lv, l.l_cmp, bt, -1)) in
      let fr = { brks = []; conts = [] } in
      c.frames <- fr :: c.frames;
      let da0 = Array.copy c.da in
      List.iter (emit_node c) l.l_body;
      c.frames <- List.tl c.frames;
      let step = emit c.b (OLoopStep (lv, sty, l.l_step, head)) in
      let exit_ = c.b.len in
      patch c.b head (OLoopHead (lv, l.l_cmp, bt, exit_));
      List.iter (fun j -> patch c.b j (OJmp exit_)) fr.brks;
      List.iter (fun j -> patch c.b j (OJmp step)) fr.conts;
      (* the body may run zero times *)
      Array.blit da0 0 c.da 0 (Array.length da0)
  | WhileLoop { w_cond = ci, cv; w_body } ->
      let head = c.b.len in
      List.iter (emit_instr c) ci;
      let jz = emit c.b (OJz (iarg_of c cv, -1)) in
      let fr = { brks = []; conts = [] } in
      c.frames <- fr :: c.frames;
      let da0 = Array.copy c.da in
      List.iter (emit_node c) w_body;
      c.frames <- List.tl c.frames;
      ignore (emit c.b (OJmp head));
      let exit_ = c.b.len in
      patch c.b jz (OJz (iarg_of c cv, exit_));
      List.iter (fun j -> patch c.b j (OJmp exit_)) fr.brks;
      List.iter (fun j -> patch c.b j (OJmp head)) fr.conts;
      Array.blit da0 0 c.da 0 (Array.length da0)
  | Return None -> ignore (emit c.b ORetNone)
  | Return (Some (ci, v)) ->
      List.iter (emit_instr c) ci;
      (* Option.map exec_code: the result is the RAW final value *)
      let op =
        match v with
        | IConst i -> ORetI (AIimm (imm_of i))
        | FConst f -> ORetF (AFimm f)
        | Reg r -> (
            match c.shapes.(r) with
            | SInt -> ORetI (AIslot c.slot_of.(r))
            | SFloat -> ORetF (AFslot c.slot_of.(r))
            | VInt _ -> ORetVI c.slot_of.(r)
            | VFloat _ -> ORetVF c.slot_of.(r))
      in
      ignore (emit c.b op)
  | BreakN -> (
      match c.frames with
      | fr :: _ -> fr.brks <- emit c.b (OJmp (-1)) :: fr.brks
      | [] -> raise Unsupported  (* Break_exc would escape run_func *))
  | ContinueN -> (
      match c.frames with
      | fr :: _ -> fr.conts <- emit c.b (OJmp (-1)) :: fr.conts
      | [] -> raise Unsupported)

let compile_fn (m : Ir.modul) (fn : Ir.func) : program =
  let shapes = infer_shapes m fn in
  let slot_of = Array.make (max 1 fn.Ir.fn_nregs) 0 in
  let nints = ref 0 and nflts = ref 0 in
  let wveci = ref [] and wvecf = ref [] in
  let nveci = ref 0 and nvecf = ref 0 in
  Array.iteri
    (fun r sh ->
      match sh with
      | SInt ->
          slot_of.(r) <- !nints;
          incr nints
      | SFloat ->
          slot_of.(r) <- !nflts;
          incr nflts
      | VInt w ->
          slot_of.(r) <- !nveci;
          incr nveci;
          wveci := w :: !wveci
      | VFloat w ->
          slot_of.(r) <- !nvecf;
          incr nvecf;
          wvecf := w :: !wvecf)
    (Array.sub shapes 0 fn.Ir.fn_nregs);
  let arr_tbl = Hashtbl.create 8 in
  let arrays = ref [] in
  let ni = ref 0 and nf = ref 0 in
  List.iter
    (fun a ->
      let isf = Ir.is_float_scalar a.Ir.arr_elem in
      let plane = if isf then !nf else !ni in
      if isf then incr nf else incr ni;
      Hashtbl.replace arr_tbl a.Ir.arr_name (isf, plane);
      arrays := (a.Ir.arr_name, isf) :: !arrays)
    m.Ir.m_arrays;
  let c =
    { fn; shapes; slot_of; nints = !nints; nflts = !nflts;
      wveci = List.rev !wveci; wvecf = List.rev !wvecf; arr_tbl;
      b = { ops = Array.make 64 ONop; len = 0 };
      da = Array.make (max 1 fn.Ir.fn_nregs) false; frames = [] }
  in
  List.iter (fun (_, r, _) -> c.da.(r) <- true) fn.Ir.fn_params;
  List.iter (emit_node c) fn.Ir.fn_body;
  ignore (emit c.b ORetNone);
  let params =
    List.mapi
      (fun i (_, r, sty) -> (Ir.is_float_scalar sty, c.slot_of.(r), i))
      fn.Ir.fn_params
  in
  { p_ops = Array.sub c.b.ops 0 c.b.len;
    p_nints = c.nints;
    p_nflts = c.nflts;
    p_wveci = Array.of_list c.wveci;
    p_wvecf = Array.of_list c.wvecf;
    p_params = params;
    p_arrays = Array.of_list (List.rev !arrays) }

let compile (m : Ir.modul) ~(kernel : string) : program option =
  match List.find_opt (fun f -> f.Ir.fn_name = kernel) m.Ir.m_funcs with
  | None -> None
  | Some fn -> ( try Some (compile_fn m fn) with Unsupported -> None)

(* ------------------------------------------------------------------ *)
(* Counters (polled by Stats.snapshot, like Machine.Timing.memo_stats)  *)
(* ------------------------------------------------------------------ *)

let c_compiles = Atomic.make 0
let c_fallbacks = Atomic.make 0
let c_cache_hits = Atomic.make 0
let c_cache_misses = Atomic.make 0
let c_evictions = Atomic.make 0
let c_vm_steps = Atomic.make 0
let c_deopts = Atomic.make 0

type vm_stats = {
  vs_compiles : int;  (** successful bytecode compilations *)
  vs_fallbacks : int;  (** modules the compiler declined (tree walker runs) *)
  vs_cache_hits : int;
  vs_cache_misses : int;
  vs_evictions : int;  (** FIFO evictions from the compiled-code cache *)
  vs_steps : int;  (** instructions executed by the VM (fuel ticks) *)
  vs_deopts : int;  (** runs abandoned to the tree walker mid-flight *)
}

let stats () : vm_stats =
  { vs_compiles = Atomic.get c_compiles;
    vs_fallbacks = Atomic.get c_fallbacks;
    vs_cache_hits = Atomic.get c_cache_hits;
    vs_cache_misses = Atomic.get c_cache_misses;
    vs_evictions = Atomic.get c_evictions;
    vs_steps = Atomic.get c_vm_steps;
    vs_deopts = Atomic.get c_deopts }

let reset_stats () : unit =
  List.iter
    (fun c -> Atomic.set c 0)
    [ c_compiles; c_fallbacks; c_cache_hits; c_cache_misses; c_evictions;
      c_vm_steps; c_deopts ]

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

let trap fmt = Printf.ksprintf (fun s -> raise (Ir_interp.Trap s)) fmt

exception Deopt
(** The run cannot keep the native-int invariant: an I64 operation's true
    result needs the 64th bit, which OCaml's 63-bit int cannot hold.
    Abandon the VM and re-execute on the tree walker from a fresh state —
    memory bound to {!run} may have been partially mutated. *)

let deopt () =
  Atomic.incr c_deopts;
  raise Deopt

(* ---- native-int semantics ----

   The integer register and vector planes hold the TRUE two's-complement
   value of every IR integer in a native OCaml int (63 bits), which is
   what makes the VM allocation-free on the integer path.  For results
   wrapped to <= 32 bits this is trivially exact: +, -, *, << and the
   bitwise ops are ring homomorphisms, so computing mod 2^63 instead of
   mod 2^64 is invisible after truncation (2^32 divides both).  For I64
   (and the float stys, whose wrap_int is the identity) the raw value
   itself is observable — stored to int64 memory, compared, returned — so
   every such operation checks that its true result fits 63 bits and
   {!deopt}s otherwise.  Division, remainder, min/max, compares, and
   arithmetic shifts right are exact on true values by construction. *)

let[@inline always] wide (sty : Ir.scalar_ty) : bool =
  match sty with
  | Ir.I64 | Ir.F32 | Ir.F64 -> true
  | Ir.I1 | Ir.I8 | Ir.I16 | Ir.I32 -> false

(* native wrap_int: sign-extend the low bits (OCaml ints are 63-bit) *)
let[@inline always] wrap_n (sty : Ir.scalar_ty) (v : int) : int =
  match sty with
  | Ir.I1 -> v land 1
  | Ir.I8 -> (v lsl 55) asr 55
  | Ir.I16 -> (v lsl 47) asr 47
  | Ir.I32 -> (v lsl 31) asr 31
  | Ir.I64 | Ir.F32 | Ir.F64 -> v

let[@inline always] to_int_checked (x : int64) : int =
  let n = Int64.to_int x in
  if Int64.of_int n <> x then deopt ();
  n

(* the tree walker's as_int on a float: Int64.of_float, then the result
   must be representable to keep the true-value invariant *)
let[@inline always] of_float_checked (f : float) : int =
  if f <> f || f >= 4.611686018427387904e18 || f < -4.611686018427387904e18
  then deopt ();
  int_of_float f

(* an int64 loaded from memory, coerced by [sty] exactly like wrap_int *)
let load_int (sty : Ir.scalar_ty) (x : int64) : int =
  match sty with
  | Ir.I64 | Ir.F32 | Ir.F64 -> to_int_checked x
  | _ -> wrap_n sty (Int64.to_int x)

(* ibin_eval on true values; [w] marks a result observed raw (wrap is the
   identity), where overflow past 63 bits must deopt instead of wrapping
   mod 2^63.  Narrow results need no checks: they are truncated below. *)
let[@inline always] ibin_n (op : Ir.ibin) (w : bool) (a : int) (b : int) : int =
  match op with
  | Ir.Add ->
      let r = a + b in
      if w && (r lxor a) land (r lxor b) < 0 then deopt ();
      r
  | Ir.Sub ->
      let r = a - b in
      if w && (a lxor b) land (r lxor a) < 0 then deopt ();
      r
  | Ir.Mul ->
      let r = a * b in
      if w then
        if a = -1 then (if b = min_int then deopt ())
        else if a <> 0 && r / a <> b then deopt ();
      r
  | Ir.SDiv ->
      if b = 0 then 0
      else if a = min_int && b = -1 then deopt ()
      else a / b
  | Ir.SRem -> if b = 0 || b = -1 then 0 else a mod b
  | Ir.Shl ->
      let s = b land 63 in
      if w then
        if s > 62 then (if a <> 0 then deopt () else 0)
        else begin
          let r = a lsl s in
          if r asr s <> a then deopt ();
          r
        end
      else if s > 62 then 0
      else a lsl s
  | Ir.AShr ->
      let s = b land 63 in
      a asr (if s > 62 then 62 else s)
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b

let[@inline always] cmp_n (op : Ir.cmp) (a : int) (b : int) : int =
  let r =
    match op with
    | Ir.CLt -> a < b
    | Ir.CLe -> a <= b
    | Ir.CGt -> a > b
    | Ir.CGe -> a >= b
    | Ir.CEq -> a = b
    | Ir.CNe -> a <> b
  in
  if r then 1 else 0

(* same-unit copies of {!Ir_interp.wrap_float}/[fbin_eval]: classic-mode
   ocamlopt only reliably inlines same-unit direct calls, and inlining is
   what lets cmmgen keep the float (and the F32 round's int32
   intermediate) unboxed through the op arms.  The arithmetic is the tree
   walker's, operation for operation, so bit-identity is by
   construction. *)
let[@inline always] wrap_f (sty : Ir.scalar_ty) (f : float) : float =
  match sty with
  | Ir.F32 -> Int32.float_of_bits (Int32.bits_of_float f)
  | _ -> f

let[@inline always] fbin_n (op : Ir.fbin) (a : float) (b : float) : float =
  match op with
  | Ir.FAdd -> a +. b
  | Ir.FSub -> a -. b
  | Ir.FMul -> a *. b
  | Ir.FDiv -> a /. b

let[@inline always] cmp_fn (op : Ir.cmp) (a : float) (b : float) : int =
  let r =
    match op with
    | Ir.CLt -> a < b
    | Ir.CLe -> a <= b
    | Ir.CGt -> a > b
    | Ir.CGe -> a >= b
    | Ir.CEq -> a = b
    | Ir.CNe -> a <> b
  in
  if r then 1 else 0

let run (p : program) ~(mem : (string * Ir_interp.mem) list)
    ?(max_steps = 200_000_000) () : outcome =
  (* bind the caller's arrays (mutated in place, exactly like the tree
     walker's state) to the kind-separated planes the ops index *)
  let ni = ref 0 and nf = ref 0 in
  Array.iter (fun (_, isf) -> if isf then incr nf else incr ni) p.p_arrays;
  (* Integer memory executes on native-int shadow planes: an [int64 array]
     element is a boxed pointer in OCaml, so running loads/stores directly
     against the caller's arrays would allocate on every store.  We convert
     once on entry (deopting, before any mutation, on a cell a native int
     cannot represent), run allocation-free, and copy back into the
     caller's arrays in the [finally] below — so the observable memory
     image, including partial mutation at a trap, matches the tree walker
     cell for cell. *)
  let origs_i = Array.make (max 1 !ni) [||] in
  let mems_i = Array.make (max 1 !ni) [||] in
  let mems_f = Array.make (max 1 !nf) [||] in
  let ii = ref 0 and fi = ref 0 in
  Array.iter
    (fun (name, isf) ->
      match List.assoc_opt name mem with
      | Some (Ir_interp.MI a) when not isf ->
          origs_i.(!ii) <- a;
          mems_i.(!ii) <- Array.map to_int_checked a;
          incr ii
      | Some (Ir_interp.MF a) when isf ->
          mems_f.(!fi) <- a;
          incr fi
      | _ -> invalid_arg ("Ir_vm.run: missing or mismatched array " ^ name))
    p.p_arrays;
  (* which int planes any op can store to: read-only inputs skip the
     write-back pass entirely *)
  let stored_i = Array.make (max 1 !ni) false in
  Array.iter
    (function
      | OStoreSI (_, pl, _, _, _) | OStoreSIM (_, pl, _, _, _, _)
      | OStoreVI (_, MemI pl, _, _, _, _, _, _)
      | OStoreVF (_, MemI pl, _, _, _, _, _, _) ->
          stored_i.(pl) <- true
      | _ -> ())
    p.p_ops;
  (* register planes, zeroed: an undefined register reads as the tree
     walker's VI 0L under every compiled coercion *)
  let ints = Array.make (max 1 p.p_nints) 0 in
  let flts = Array.make (max 1 p.p_nflts) 0.0 in
  let veci = Array.map (fun w -> Array.make w 0) p.p_wveci in
  let vecf = Array.map (fun w -> Array.make w 0.0) p.p_wvecf in
  List.iter
    (fun (isf, slot, i) ->
      if isf then flts.(slot) <- 1.5 else ints.(slot) <- (i + 2) * 3)
    p.p_params;
  let[@inline always] geti = function
    | AIimm i -> i
    | AIslot s -> Array.unsafe_get ints s
    | AIfslot s -> of_float_checked (Array.unsafe_get flts s)
  in
  let[@inline always] getf = function
    | AFimm f -> f
    | AFslot s -> Array.unsafe_get flts s
    | AFislot s -> float_of_int (Array.unsafe_get ints s)
  in
  (* per-lane operand reads: no closure allocation in the hot loop *)
  let[@inline always] vi_get v k =
    match v with
    | ViSlot s -> Array.unsafe_get (Array.unsafe_get veci s) k
    | ViSplat x -> geti x
  in
  let[@inline always] vf_get v k =
    match v with
    | VfSlot s -> Array.unsafe_get (Array.unsafe_get vecf s) k
    | VfSplat x -> getf x
  in
  let[@inline always] m_get m k = match m with None -> 1 | Some v -> vi_get v k in
  let steps = ref 0 in
  let[@inline always] tick () =
    incr steps;
    if !steps > max_steps then trap "step budget exceeded"
  in
  let ops = p.p_ops in
  (* tail-recursive dispatch: [pc] lives in a register instead of a ref
     cell, saving a load+store per executed instruction *)
  let rec exec (pc : int) : Ir_interp.rvalue_v option =
    match Array.unsafe_get ops pc with
      | ONop ->
          tick ();
          exec (pc + 1)
      | OIBin (d, op, sty, a, b) ->
          tick ();
          Array.unsafe_set ints d
            (wrap_n sty (ibin_n op (wide sty) (geti a) (geti b)));
          exec (pc + 1)
      | OFBin (d, op, sty, a, b) ->
          tick ();
          Array.unsafe_set flts d
            (wrap_f sty (fbin_n op (getf a) (getf b)));
          exec (pc + 1)
      | OICmpS (d, op, a, b) ->
          tick ();
          Array.unsafe_set ints d (cmp_n op (geti a) (geti b));
          exec (pc + 1)
      | OFCmpS (d, op, a, b) ->
          tick ();
          Array.unsafe_set ints d (cmp_fn op (getf a) (getf b));
          exec (pc + 1)
      | OSelI (d, c, a, b) ->
          tick ();
          Array.unsafe_set ints d (geti (if geti c <> 0 then a else b));
          exec (pc + 1)
      | OSelF (d, c, a, b) ->
          tick ();
          Array.unsafe_set flts d (getf (if geti c <> 0 then a else b));
          exec (pc + 1)
      | OCastII (d, sty, a) ->
          tick ();
          Array.unsafe_set ints d (wrap_n sty (geti a));
          exec (pc + 1)
      | OCastFF (d, sty, a) ->
          tick ();
          Array.unsafe_set flts d (wrap_f sty (getf a));
          exec (pc + 1)
      | OExtractI (d, s, v, lane) ->
          tick ();
          Array.unsafe_set ints d (wrap_n s (Array.unsafe_get veci.(v) lane));
          exec (pc + 1)
      | OExtractF (d, s, v, lane) ->
          tick ();
          Array.unsafe_set flts d
            (wrap_f s (Array.unsafe_get vecf.(v) lane));
          exec (pc + 1)
      | OReduceI (d, op, s, v) ->
          tick ();
          let a = veci.(v) in
          let w = wide s in
          let acc = ref a.(0) in
          for k = 1 to Array.length a - 1 do
            let x = Array.unsafe_get a k in
            acc :=
              (match op with
              | Ir.RAdd ->
                  let r = !acc + x in
                  if w && (r lxor !acc) land (r lxor x) < 0 then deopt ();
                  r
              | Ir.RMul ->
                  let r = !acc * x in
                  if w then
                    if !acc = -1 then (if x = min_int then deopt ())
                    else if !acc <> 0 && r / !acc <> x then deopt ();
                  r
              | Ir.RMin -> Stdlib.min !acc x
              | Ir.RMax -> Stdlib.max !acc x
              | Ir.RAnd -> !acc land x
              | Ir.ROr -> !acc lor x
              | Ir.RXor -> !acc lxor x)
          done;
          Array.unsafe_set ints d (wrap_n s !acc);
          exec (pc + 1)
      | OReduceF (d, op, s, v) ->
          tick ();
          let a = vecf.(v) in
          (* F32 reductions round pairwise like the scalar loop would *)
          let acc = ref a.(0) in
          for k = 1 to Array.length a - 1 do
            let x = Array.unsafe_get a k in
            let r =
              match op with
              | Ir.RAdd -> !acc +. x
              | Ir.RMul -> !acc *. x
              | Ir.RMin -> Stdlib.min !acc x
              | Ir.RMax -> Stdlib.max !acc x
              | Ir.RAnd | Ir.ROr | Ir.RXor ->
                  trap "bitwise reduce on float vector"
            in
            acc := wrap_f s r
          done;
          Array.unsafe_set flts d !acc;
          exec (pc + 1)
      | OCall1F (d, f, a) ->
          tick ();
          Array.unsafe_set flts d (f (getf a));
          exec (pc + 1)
      | OCall2F (d, f, a, b) ->
          tick ();
          Array.unsafe_set flts d (f (getf a) (getf b));
          exec (pc + 1)
      | OCallAbs (d, a) ->
          tick ();
          let v = geti a in
          if v = min_int then deopt ();
          Array.unsafe_set ints d (abs v);
          exec (pc + 1)
      | OLoadSI (d, sty, pl, name, idx) ->
          tick ();
          let a = Array.unsafe_get mems_i pl in
          let i = geti idx in
          if i < 0 || i >= Array.length a then
            trap "out-of-bounds load %s[%d] (size %d)" name i (Array.length a);
          Array.unsafe_set ints d (wrap_n sty (Array.unsafe_get a i));
          exec (pc + 1)
      | OLoadSF (d, sty, pl, name, idx) ->
          tick ();
          let a = Array.unsafe_get mems_f pl in
          let i = geti idx in
          if i < 0 || i >= Array.length a then
            trap "out-of-bounds load %s[%d] (size %d)" name i (Array.length a);
          Array.unsafe_set flts d (wrap_f sty (Array.unsafe_get a i));
          exec (pc + 1)
      | OLoadSIM (d, sty, pl, name, idx, mk) ->
          tick ();
          if geti mk = 0 then Array.unsafe_set ints d 0
          else begin
            let a = Array.unsafe_get mems_i pl in
            let i = geti idx in
            if i < 0 || i >= Array.length a then
              trap "out-of-bounds load %s[%d] (size %d)" name i
                (Array.length a);
            Array.unsafe_set ints d (wrap_n sty (Array.unsafe_get a i))
          end;
          exec (pc + 1)
      | OLoadSFM (d, sty, pl, name, idx, mk) ->
          tick ();
          if geti mk = 0 then Array.unsafe_set flts d 0.0
          else begin
            let a = Array.unsafe_get mems_f pl in
            let i = geti idx in
            if i < 0 || i >= Array.length a then
              trap "out-of-bounds load %s[%d] (size %d)" name i
                (Array.length a);
            Array.unsafe_set flts d (wrap_f sty (Array.unsafe_get a i))
          end;
          exec (pc + 1)
      | OStoreSI (sty, pl, name, idx, v) ->
          tick ();
          let a = Array.unsafe_get mems_i pl in
          let i = geti idx in
          if i < 0 || i >= Array.length a then
            trap "out-of-bounds store %s[%d] (size %d)" name i (Array.length a);
          Array.unsafe_set a i (wrap_n sty (geti v));
          exec (pc + 1)
      | OStoreSF (sty, pl, name, idx, v) ->
          tick ();
          let a = Array.unsafe_get mems_f pl in
          let i = geti idx in
          if i < 0 || i >= Array.length a then
            trap "out-of-bounds store %s[%d] (size %d)" name i (Array.length a);
          Array.unsafe_set a i (wrap_f sty (getf v));
          exec (pc + 1)
      | OStoreSIM (sty, pl, name, idx, v, mk) ->
          tick ();
          if geti mk <> 0 then begin
            let a = Array.unsafe_get mems_i pl in
            let i = geti idx in
            if i < 0 || i >= Array.length a then
              trap "out-of-bounds store %s[%d] (size %d)" name i
                (Array.length a);
            Array.unsafe_set a i (wrap_n sty (geti v))
          end;
          exec (pc + 1)
      | OStoreSFM (sty, pl, name, idx, v, mk) ->
          tick ();
          if geti mk <> 0 then begin
            let a = Array.unsafe_get mems_f pl in
            let i = geti idx in
            if i < 0 || i >= Array.length a then
              trap "out-of-bounds store %s[%d] (size %d)" name i
                (Array.length a);
            Array.unsafe_set a i (wrap_f sty (getf v))
          end;
          exec (pc + 1)
      | OLoadVI (d, sty, ma, name, idx, stride, mask) ->
          tick ();
          let dv = veci.(d) in
          let n = Array.length dv in
          let base = geti idx in
          (match ma with
          | MemI pl ->
              let a = Array.unsafe_get mems_i pl in
              let len = Array.length a in
              for k = 0 to n - 1 do
                if m_get mask k <> 0 then begin
                  let i = base + (k * stride) in
                  if i < 0 || i >= len then
                    trap "out-of-bounds load %s[%d] (size %d)" name i len;
                  Array.unsafe_set dv k (wrap_n sty (Array.unsafe_get a i))
                end
                else Array.unsafe_set dv k 0
              done
          | MemF pl ->
              let a = Array.unsafe_get mems_f pl in
              let len = Array.length a in
              for k = 0 to n - 1 do
                if m_get mask k <> 0 then begin
                  let i = base + (k * stride) in
                  if i < 0 || i >= len then
                    trap "out-of-bounds load %s[%d] (size %d)" name i len;
                  Array.unsafe_set dv k
                    (of_float_checked (wrap_f sty (Array.unsafe_get a i)))
                end
                else Array.unsafe_set dv k 0
              done);
          exec (pc + 1)
      | OLoadVF (d, sty, ma, name, idx, stride, mask) ->
          tick ();
          let dv = vecf.(d) in
          let n = Array.length dv in
          let base = geti idx in
          (match ma with
          | MemF pl ->
              let a = Array.unsafe_get mems_f pl in
              let len = Array.length a in
              for k = 0 to n - 1 do
                if m_get mask k <> 0 then begin
                  let i = base + (k * stride) in
                  if i < 0 || i >= len then
                    trap "out-of-bounds load %s[%d] (size %d)" name i len;
                  Array.unsafe_set dv k (wrap_f sty (Array.unsafe_get a i))
                end
                else Array.unsafe_set dv k 0.0
              done
          | MemI pl ->
              let a = Array.unsafe_get mems_i pl in
              let len = Array.length a in
              for k = 0 to n - 1 do
                if m_get mask k <> 0 then begin
                  let i = base + (k * stride) in
                  if i < 0 || i >= len then
                    trap "out-of-bounds load %s[%d] (size %d)" name i len;
                  Array.unsafe_set dv k
                    (float_of_int (wrap_n sty (Array.unsafe_get a i)))
                end
                else Array.unsafe_set dv k 0.0
              done);
          exec (pc + 1)
      | OStoreVI (sty, ma, name, idx, stride, n, src, mask) ->
          tick ();
          let base = geti idx in
          (match ma with
          | MemI pl ->
              let a = Array.unsafe_get mems_i pl in
              let len = Array.length a in
              for k = 0 to n - 1 do
                if m_get mask k <> 0 then begin
                  let i = base + (k * stride) in
                  if i < 0 || i >= len then
                    trap "out-of-bounds store %s[%d] (size %d)" name i len;
                  Array.unsafe_set a i (wrap_n sty (vi_get src k))
                end
              done
          | MemF pl ->
              let a = Array.unsafe_get mems_f pl in
              let len = Array.length a in
              for k = 0 to n - 1 do
                if m_get mask k <> 0 then begin
                  let i = base + (k * stride) in
                  if i < 0 || i >= len then
                    trap "out-of-bounds store %s[%d] (size %d)" name i len;
                  Array.unsafe_set a i
                    (wrap_f sty (float_of_int (vi_get src k)))
                end
              done);
          exec (pc + 1)
      | OStoreVF (sty, ma, name, idx, stride, n, src, mask) ->
          tick ();
          let base = geti idx in
          (match ma with
          | MemF pl ->
              let a = Array.unsafe_get mems_f pl in
              let len = Array.length a in
              for k = 0 to n - 1 do
                if m_get mask k <> 0 then begin
                  let i = base + (k * stride) in
                  if i < 0 || i >= len then
                    trap "out-of-bounds store %s[%d] (size %d)" name i len;
                  Array.unsafe_set a i (wrap_f sty (vf_get src k))
                end
              done
          | MemI pl ->
              let a = Array.unsafe_get mems_i pl in
              let len = Array.length a in
              for k = 0 to n - 1 do
                if m_get mask k <> 0 then begin
                  let i = base + (k * stride) in
                  if i < 0 || i >= len then
                    trap "out-of-bounds store %s[%d] (size %d)" name i len;
                  Array.unsafe_set a i
                    (wrap_n sty (of_float_checked (vf_get src k)))
                end
              done);
          exec (pc + 1)
      | OIBinV (d, op, sty, a, b) ->
          tick ();
          let dv = veci.(d) in
          let w = wide sty in
          for k = 0 to Array.length dv - 1 do
            Array.unsafe_set dv k
              (wrap_n sty (ibin_n op w (vi_get a k) (vi_get b k)))
          done;
          exec (pc + 1)
      | OFBinV (d, op, sty, a, b) ->
          tick ();
          let dv = vecf.(d) in
          for k = 0 to Array.length dv - 1 do
            Array.unsafe_set dv k
              (wrap_f sty (fbin_n op (vf_get a k) (vf_get b k)))
          done;
          exec (pc + 1)
      | OICmpV (d, op, a, b) ->
          tick ();
          let dv = veci.(d) in
          for k = 0 to Array.length dv - 1 do
            Array.unsafe_set dv k (cmp_n op (vi_get a k) (vi_get b k))
          done;
          exec (pc + 1)
      | OFCmpV (d, op, a, b) ->
          tick ();
          let dv = veci.(d) in
          for k = 0 to Array.length dv - 1 do
            Array.unsafe_set dv k (cmp_fn op (vf_get a k) (vf_get b k))
          done;
          exec (pc + 1)
      | OSelVI (d, c, a, b) ->
          tick ();
          let dv = veci.(d) in
          for k = 0 to Array.length dv - 1 do
            Array.unsafe_set dv k
              (if vi_get c k <> 0 then vi_get a k else vi_get b k)
          done;
          exec (pc + 1)
      | OSelVF (d, c, a, b) ->
          tick ();
          let dv = vecf.(d) in
          for k = 0 to Array.length dv - 1 do
            Array.unsafe_set dv k
              (if vi_get c k <> 0 then vf_get a k else vf_get b k)
          done;
          exec (pc + 1)
      | OCastVII (d, sty, a) ->
          tick ();
          let dv = veci.(d) in
          for k = 0 to Array.length dv - 1 do
            Array.unsafe_set dv k (wrap_n sty (vi_get a k))
          done;
          exec (pc + 1)
      | OCastVIF (d, sty, a) ->
          tick ();
          let dv = veci.(d) in
          for k = 0 to Array.length dv - 1 do
            Array.unsafe_set dv k (wrap_n sty (of_float_checked (vf_get a k)))
          done;
          exec (pc + 1)
      | OCastVFI (d, sty, a) ->
          tick ();
          let dv = vecf.(d) in
          for k = 0 to Array.length dv - 1 do
            Array.unsafe_set dv k (wrap_f sty (float_of_int (vi_get a k)))
          done;
          exec (pc + 1)
      | OCastVFF (d, sty, a) ->
          tick ();
          let dv = vecf.(d) in
          for k = 0 to Array.length dv - 1 do
            Array.unsafe_set dv k (wrap_f sty (vf_get a k))
          done;
          exec (pc + 1)
      | OSplatVI (d, sty, x) ->
          tick ();
          let dv = veci.(d) in
          Array.fill dv 0 (Array.length dv) (wrap_n sty (geti x));
          exec (pc + 1)
      | OSplatVF (d, x) ->
          tick ();
          let dv = vecf.(d) in
          Array.fill dv 0 (Array.length dv) (getf x);
          exec (pc + 1)
      | OMovVF (d, sty, x) ->
          tick ();
          let dv = vecf.(d) in
          Array.fill dv 0 (Array.length dv) (wrap_f sty (getf x));
          exec (pc + 1)
      | OCopyVI (d, s) ->
          tick ();
          let dv = veci.(d) and sv = veci.(s) in
          Array.blit sv 0 dv 0 (Array.length dv);
          exec (pc + 1)
      | OCopyVF (d, s) ->
          tick ();
          let dv = vecf.(d) and sv = vecf.(s) in
          Array.blit sv 0 dv 0 (Array.length dv);
          exec (pc + 1)
      | OStrideV (d, sty, x, step) ->
          tick ();
          let dv = veci.(d) in
          let base = geti x in
          let w = wide sty in
          for k = 0 to Array.length dv - 1 do
            let o = k * step in
            let r = base + o in
            if w && (r lxor base) land (r lxor o) < 0 then deopt ();
            Array.unsafe_set dv k (wrap_n sty r)
          done;
          exec (pc + 1)
      | OSetI (d, a) ->
          Array.unsafe_set ints d (geti a);
          exec (pc + 1)
      | OJmp t -> exec t
      | OJz (c, t) -> if geti c = 0 then exec t else exec (pc + 1)
      | OLoopHead (lv, cmp, bt, exit_) ->
          if
            cmp_n cmp (Array.unsafe_get ints lv) (Array.unsafe_get ints bt)
            = 0
          then exec exit_
          else exec (pc + 1)
      | OLoopStep (lv, sty, step, head) ->
          let a = Array.unsafe_get ints lv in
          let r = a + step in
          if wide sty && (r lxor a) land (r lxor step) < 0 then deopt ();
          Array.unsafe_set ints lv (wrap_n sty r);
          exec head
      | ORetNone ->
          None
      | ORetI a ->
          Some (Ir_interp.VI (Int64.of_int (geti a)))
      | ORetF a ->
          Some (Ir_interp.VF (getf a))
      | ORetVI s ->
          Some (Ir_interp.VVI (Array.map Int64.of_int veci.(s)))
      | ORetVF s ->
          Some (Ir_interp.VVF (Array.copy vecf.(s)))
  in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Array.iteri
          (fun j plane ->
            if Array.unsafe_get stored_i j then begin
              let orig = origs_i.(j) in
              Array.iteri (fun k v -> orig.(k) <- Int64.of_int v) plane
            end)
          mems_i;
        ignore (Atomic.fetch_and_add c_vm_steps !steps))
      (fun () -> exec 0)
  in
  { o_result = result; o_steps = !steps }

(* ------------------------------------------------------------------ *)
(* Content-addressed compiled-code cache                                *)
(* ------------------------------------------------------------------ *)

(* First-commit-wins shards with FIFO eviction, like Verify.Tv verdicts
   and the Frontend caches: a [--jobs N] sweep compiles (and caches)
   exactly what a [--jobs 1] sweep does, racing compiles are resolved
   deterministically (compilation is a pure function of the module), and
   a long-lived daemon cannot grow the table without bound.  [None] is
   cached too: a module the compiler declines falls back to the tree
   walker without re-attempting compilation on every verdict. *)

type shard = {
  sh_lock : Mutex.t;
  sh_tbl : (string, program option) Hashtbl.t;
  sh_order : string Queue.t;
  mutable sh_cap : int;
}

let n_shards = 16

let default_cap =
  match Sys.getenv_opt "NEUROVEC_VM_CAP" with
  | None -> 4096
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ ->
          prerr_endline
            "neurovec: NEUROVEC_VM_CAP is not a positive integer; using 4096";
          4096)

let shards =
  Array.init n_shards (fun _ ->
      { sh_lock = Mutex.create ();
        sh_tbl = Hashtbl.create 64;
        sh_order = Queue.create ();
        sh_cap = max 1 (default_cap / n_shards) })

let shard_of (key : string) : shard =
  if String.length key = 0 then shards.(0)
  else shards.(Char.code key.[0] mod n_shards)

let evict_over_cap (sh : shard) : unit =
  while Hashtbl.length sh.sh_tbl > sh.sh_cap do
    match Queue.take_opt sh.sh_order with
    | None -> Hashtbl.reset sh.sh_tbl (* order desync safety net *)
    | Some k ->
        if Hashtbl.mem sh.sh_tbl k then begin
          Hashtbl.remove sh.sh_tbl k;
          Atomic.incr c_evictions
        end
  done

(** For tests: set the per-shard capacity (and evict down to it). *)
let set_shard_capacity (n : int) : unit =
  Array.iter
    (fun sh ->
      Mutex.protect sh.sh_lock (fun () ->
          sh.sh_cap <- max 1 n;
          evict_over_cap sh))
    shards

let clear_cache () : unit =
  Array.iter
    (fun sh ->
      Mutex.protect sh.sh_lock (fun () ->
          Hashtbl.reset sh.sh_tbl;
          Queue.clear sh.sh_order))
    shards

(** Compile [kernel] of [m], content-addressed by [key].  The caller must
    guarantee [key] uniquely identifies the module's semantics (the
    verify keys do: they digest source, plan, and pass pipeline).
    Returns [None] when the module is outside the compiler's bit-exact
    subset — run {!Ir_interp} instead. *)
let load ~(key : string) (m : Ir.modul) ~(kernel : string) : program option =
  let sh = shard_of key in
  match Mutex.protect sh.sh_lock (fun () -> Hashtbl.find_opt sh.sh_tbl key) with
  | Some cached ->
      Atomic.incr c_cache_hits;
      cached
  | None ->
      Atomic.incr c_cache_misses;
      let prog = compile m ~kernel in
      (match prog with
      | Some _ -> Atomic.incr c_compiles
      | None -> Atomic.incr c_fallbacks);
      Mutex.protect sh.sh_lock (fun () ->
          match Hashtbl.find_opt sh.sh_tbl key with
          | Some winner -> winner (* first commit wins *)
          | None ->
              Hashtbl.replace sh.sh_tbl key prog;
              Queue.add key sh.sh_order;
              evict_over_cap sh;
              prog)
