(** A typed, structured intermediate representation.

    The IR plays the role LLVM IR plays in the paper: the loop vectorizer
    transforms it, the baseline cost model prices it, and the machine model
    executes it. Unlike LLVM we keep loops structured (a loop tree rather
    than a raw CFG): every transformation this project needs — widening,
    interleaving, if-conversion, tiling, fusion — is defined on loop nests,
    and a structured IR makes the semantic-equivalence property tests
    (scalar vs. vectorized execution) direct.

    Registers are mutable virtual registers, not SSA: a scalar [sum] updated
    every iteration is simply redefined. Reduction recognition in
    [Analysis.Reduction] deals with the resulting loop-carried scalar
    cycles, which is also how LLVM's vectorizer views them after LCSSA. *)

type scalar_ty = I1 | I8 | I16 | I32 | I64 | F32 | F64

type ty = Scalar of scalar_ty | Vec of int * scalar_ty

type reg = int

type value = Reg of reg | IConst of int64 | FConst of float

type ibin = Add | Sub | Mul | SDiv | SRem | Shl | AShr | And | Or | Xor

type fbin = FAdd | FSub | FMul | FDiv

type cmp = CLt | CLe | CGt | CGe | CEq | CNe

type cast_kind = ZExt | SExt | Trunc | FpExt | FpTrunc | SiToFp | FpToSi

type reduce_op = RAdd | RMul | RMin | RMax | RAnd | ROr | RXor

(** A memory reference. [index] is an element index (not a byte offset) into
    the named array; lowering linearizes multi-dimensional accesses. For a
    vector access of width [n], lane [k] reads element [index + k*stride].
    [mask] (a [Vec (n, I1)] value) predicates lanes for if-converted code. *)
type mem_ref = {
  base : string;
  index : value;
  stride : int;
  mask : value option;
}

type rvalue =
  | IBin of ibin * ty * value * value
  | FBin of fbin * ty * value * value
  | ICmp of cmp * ty * value * value  (** operand type; result I1/Vec I1 *)
  | FCmp of cmp * ty * value * value
  | Select of ty * value * value * value
  | Cast of cast_kind * ty * ty * value  (** from, to *)
  | Load of ty * mem_ref
  | Splat of ty * value  (** broadcast a scalar into a vector *)
  | Extract of scalar_ty * value * int  (** lane extract *)
  | Reduce of reduce_op * scalar_ty * value  (** horizontal reduction *)
  | Mov of ty * value
  | Stride of ty * value * int
      (** lane-indexed vector: lane k = scalar + k*step; used to widen
          induction variables *)

type instr =
  | Def of reg * rvalue
  | Store of ty * mem_ref * value
  | CallI of reg option * string * value list  (** math builtins *)

(** Code computing a value: an instruction sequence plus the value it
    leaves the result in. *)
type code = instr list * value

type node =
  | Block of instr list
  | If of { cond : code; then_ : node list; else_ : node list }
  | Loop of loop
  | WhileLoop of { w_cond : code; w_body : node list }
      (** uncounted loop; never vectorized *)
  | Return of code option
  | BreakN
  | ContinueN

and loop = {
  l_id : int;  (** unique within the module *)
  l_var : reg;  (** induction variable, I64 *)
  l_init : code;
  l_bound : code;  (** loop-invariant; hoisted and evaluated once *)
  l_cmp : cmp;  (** i [l_cmp] bound continues the loop *)
  l_step : int;  (** constant step, non-zero *)
  l_pragma : Minic.Ast.loop_pragma option;
  l_body : node list;
  l_trip_hint : int option;
      (** expected iteration count when not derivable from the bounds
          (set by transforms that split loops, e.g. remainder loops) *)
}

type array_obj = {
  arr_name : string;
  arr_elem : scalar_ty;
  arr_dims : int list;  (** outermost first; product = element count *)
  arr_align : int;
}

type func = {
  fn_name : string;
  fn_params : (string * reg * scalar_ty) list;
  mutable fn_nregs : int;
  mutable fn_regty : ty array;
  mutable fn_body : node list;
}

type modul = {
  mutable m_arrays : array_obj list;
  mutable m_funcs : func list;
}

(* ------------------------------------------------------------------ *)
(* Type helpers                                                         *)
(* ------------------------------------------------------------------ *)

let scalar_size = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 | F32 -> 4
  | I64 | F64 -> 8

let is_float_scalar = function F32 | F64 -> true | _ -> false

let elem_ty = function Scalar s -> s | Vec (_, s) -> s

let width = function Scalar _ -> 1 | Vec (n, _) -> n

let ty_size = function
  | Scalar s -> scalar_size s
  | Vec (n, s) -> n * scalar_size s

(** Widen a scalar type to a vector of [n] lanes ([n = 1] keeps it scalar). *)
let widen n ty =
  let s = elem_ty ty in
  if n = 1 then Scalar s else Vec (n, s)

let array_elems a = List.fold_left ( * ) 1 a.arr_dims

let find_array m name = List.find_opt (fun a -> a.arr_name = name) m.m_arrays

(* ------------------------------------------------------------------ *)
(* Register management                                                  *)
(* ------------------------------------------------------------------ *)

let new_func name params_tys : func =
  let fn =
    { fn_name = name; fn_params = []; fn_nregs = 0;
      fn_regty = Array.make 16 (Scalar I64); fn_body = [] }
  in
  let params =
    List.map
      (fun (pname, sty) ->
        let r = fn.fn_nregs in
        fn.fn_nregs <- fn.fn_nregs + 1;
        if r >= Array.length fn.fn_regty then begin
          let bigger = Array.make (2 * Array.length fn.fn_regty) (Scalar I64) in
          Array.blit fn.fn_regty 0 bigger 0 (Array.length fn.fn_regty);
          fn.fn_regty <- bigger
        end;
        fn.fn_regty.(r) <- Scalar sty;
        (pname, r, sty))
      params_tys
  in
  { fn with fn_params = params }

let fresh_reg (fn : func) (ty : ty) : reg =
  let r = fn.fn_nregs in
  fn.fn_nregs <- fn.fn_nregs + 1;
  if r >= Array.length fn.fn_regty then begin
    let bigger = Array.make (max 16 (2 * Array.length fn.fn_regty)) (Scalar I64) in
    Array.blit fn.fn_regty 0 bigger 0 (Array.length fn.fn_regty);
    fn.fn_regty <- bigger
  end;
  fn.fn_regty.(r) <- ty;
  r

let reg_ty (fn : func) (r : reg) : ty = fn.fn_regty.(r)

(* ------------------------------------------------------------------ *)
(* Copying                                                              *)
(* ------------------------------------------------------------------ *)

(** Deep copy of a function with respect to every mutable cell: a fresh
    record, a fresh register-type array.  The node tree is shared — nodes
    are immutable, and every pass in this repo (LICM, CSE, the vectorizer)
    rewrites by rebuilding nodes and assigning [fn_body], never by mutating
    a node in place — so transforming the copy cannot be observed through
    the original. *)
let copy_func (fn : func) : func =
  { fn with fn_regty = Array.copy fn.fn_regty }

(** Deep structural copy of a module's mutable state.  This is what makes
    shared-artifact action sweeps possible: lower + LICM/CSE a program once
    into a pristine pre-vectorization module, then give each of the 35
    (VF, IF) actions its own [copy_modul] to transform, instead of
    re-running the whole front-to-mid-end per action.  Register numbering,
    loop ids and gensym'd names are preserved exactly, so a pipeline run on
    a copy is bit-identical to a run on a fresh lowering. *)
let copy_modul (m : modul) : modul =
  { m_arrays = m.m_arrays; m_funcs = List.map copy_func m.m_funcs }

let set_reg_ty (fn : func) (r : reg) (ty : ty) = fn.fn_regty.(r) <- ty

(** Type of a value in the context of a function. Integer constants default
    to I64; use the surrounding instruction's type for precision. *)
let value_ty fn = function
  | Reg r -> reg_ty fn r
  | IConst _ -> Scalar I64
  | FConst _ -> Scalar F64

(* ------------------------------------------------------------------ *)
(* Traversal                                                            *)
(* ------------------------------------------------------------------ *)

(** Iterate over all loops in a node list, outer loops before inner. *)
let rec iter_loops f (nodes : node list) =
  List.iter
    (fun n ->
      match n with
      | Loop l ->
          f l;
          iter_loops f l.l_body
      | If { then_; else_; _ } ->
          iter_loops f then_;
          iter_loops f else_
      | WhileLoop { w_body; _ } -> iter_loops f w_body
      | Block _ | Return _ | BreakN | ContinueN -> ())
    nodes

let func_loops fn =
  let acc = ref [] in
  iter_loops (fun l -> acc := l :: !acc) fn.fn_body;
  List.rev !acc

(** Innermost loops: loops containing no other loop. *)
let innermost_loops fn =
  let has_inner l =
    let found = ref false in
    iter_loops (fun _ -> found := true) l.l_body;
    !found
  in
  List.filter (fun l -> not (has_inner l)) (func_loops fn)

(** Map over every loop node bottom-up, rebuilding the tree. *)
let rec map_loops (f : loop -> node) (nodes : node list) : node list =
  List.map
    (fun n ->
      match n with
      | Loop l ->
          let l = { l with l_body = map_loops f l.l_body } in
          f l
      | If { cond; then_; else_ } ->
          If { cond; then_ = map_loops f then_; else_ = map_loops f else_ }
      | WhileLoop { w_cond; w_body } ->
          WhileLoop { w_cond; w_body = map_loops f w_body }
      | other -> other)
    nodes

(** All instructions in a node list, in order, ignoring control structure. *)
let rec all_instrs (nodes : node list) : instr list =
  List.concat_map
    (fun n ->
      match n with
      | Block is -> is
      | If { cond = ci, _; then_; else_ } ->
          ci @ all_instrs then_ @ all_instrs else_
      | Loop l ->
          let ii, _ = l.l_init and bi, _ = l.l_bound in
          ii @ bi @ all_instrs l.l_body
      | WhileLoop { w_cond = ci, _; w_body } -> ci @ all_instrs w_body
      | Return (Some (ci, _)) -> ci
      | Return None | BreakN | ContinueN -> [])
    nodes

(** Fold over the same instructions as {!all_instrs}, in the same order,
    without materializing the list — for whole-module summaries (e.g. the
    compile-time model) that run once per evaluated action. *)
let rec fold_instrs (f : 'a -> instr -> 'a) (acc : 'a) (nodes : node list) :
    'a =
  List.fold_left
    (fun acc n ->
      match n with
      | Block is -> List.fold_left f acc is
      | If { cond = ci, _; then_; else_ } ->
          fold_instrs f (fold_instrs f (List.fold_left f acc ci) then_) else_
      | Loop l ->
          let ii, _ = l.l_init and bi, _ = l.l_bound in
          fold_instrs f
            (List.fold_left f (List.fold_left f acc ii) bi)
            l.l_body
      | WhileLoop { w_cond = ci, _; w_body } ->
          fold_instrs f (List.fold_left f acc ci) w_body
      | Return (Some (ci, _)) -> List.fold_left f acc ci
      | Return None | BreakN | ContinueN -> acc)
    acc nodes

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let scalar_ty_to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"

let ty_to_string = function
  | Scalar s -> scalar_ty_to_string s
  | Vec (n, s) -> Printf.sprintf "<%d x %s>" n (scalar_ty_to_string s)

let value_to_string = function
  | Reg r -> Printf.sprintf "%%r%d" r
  | IConst i -> Int64.to_string i
  | FConst f -> Printf.sprintf "%g" f

let ibin_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | SDiv -> "sdiv"
  | SRem -> "srem"
  | Shl -> "shl"
  | AShr -> "ashr"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"

let fbin_to_string = function
  | FAdd -> "fadd"
  | FSub -> "fsub"
  | FMul -> "fmul"
  | FDiv -> "fdiv"

let cmp_to_string = function
  | CLt -> "lt"
  | CLe -> "le"
  | CGt -> "gt"
  | CGe -> "ge"
  | CEq -> "eq"
  | CNe -> "ne"

let cast_to_string = function
  | ZExt -> "zext"
  | SExt -> "sext"
  | Trunc -> "trunc"
  | FpExt -> "fpext"
  | FpTrunc -> "fptrunc"
  | SiToFp -> "sitofp"
  | FpToSi -> "fptosi"

let reduce_to_string = function
  | RAdd -> "add"
  | RMul -> "mul"
  | RMin -> "min"
  | RMax -> "max"
  | RAnd -> "and"
  | ROr -> "or"
  | RXor -> "xor"

let mem_ref_to_string m =
  let mask =
    match m.mask with Some v -> ", mask " ^ value_to_string v | None -> ""
  in
  let stride = if m.stride = 1 then "" else Printf.sprintf ", stride %d" m.stride in
  Printf.sprintf "%s[%s%s%s]" m.base (value_to_string m.index) stride mask

let rvalue_to_string = function
  | IBin (op, ty, a, b) ->
      Printf.sprintf "%s %s %s, %s" (ibin_to_string op) (ty_to_string ty)
        (value_to_string a) (value_to_string b)
  | FBin (op, ty, a, b) ->
      Printf.sprintf "%s %s %s, %s" (fbin_to_string op) (ty_to_string ty)
        (value_to_string a) (value_to_string b)
  | ICmp (op, ty, a, b) ->
      Printf.sprintf "icmp %s %s %s, %s" (cmp_to_string op) (ty_to_string ty)
        (value_to_string a) (value_to_string b)
  | FCmp (op, ty, a, b) ->
      Printf.sprintf "fcmp %s %s %s, %s" (cmp_to_string op) (ty_to_string ty)
        (value_to_string a) (value_to_string b)
  | Select (ty, c, a, b) ->
      Printf.sprintf "select %s %s, %s, %s" (ty_to_string ty)
        (value_to_string c) (value_to_string a) (value_to_string b)
  | Cast (k, from_, to_, v) ->
      Printf.sprintf "%s %s %s to %s" (cast_to_string k) (ty_to_string from_)
        (value_to_string v) (ty_to_string to_)
  | Load (ty, m) -> Printf.sprintf "load %s %s" (ty_to_string ty) (mem_ref_to_string m)
  | Splat (ty, v) -> Printf.sprintf "splat %s %s" (ty_to_string ty) (value_to_string v)
  | Extract (s, v, lane) ->
      Printf.sprintf "extract %s %s, %d" (scalar_ty_to_string s)
        (value_to_string v) lane
  | Reduce (op, s, v) ->
      Printf.sprintf "reduce.%s %s %s" (reduce_to_string op)
        (scalar_ty_to_string s) (value_to_string v)
  | Mov (ty, v) -> Printf.sprintf "mov %s %s" (ty_to_string ty) (value_to_string v)
  | Stride (ty, v, step) ->
      Printf.sprintf "stride %s %s, +%d" (ty_to_string ty) (value_to_string v) step

let instr_to_string = function
  | Def (r, rv) -> Printf.sprintf "%%r%d = %s" r (rvalue_to_string rv)
  | Store (ty, m, v) ->
      Printf.sprintf "store %s %s, %s" (ty_to_string ty) (value_to_string v)
        (mem_ref_to_string m)
  | CallI (Some r, f, args) ->
      Printf.sprintf "%%r%d = call %s(%s)" r f
        (String.concat ", " (List.map value_to_string args))
  | CallI (None, f, args) ->
      Printf.sprintf "call %s(%s)" f
        (String.concat ", " (List.map value_to_string args))

let rec node_to_buf buf lvl node =
  let ind n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let instrs lvl is =
    List.iter
      (fun i ->
        ind lvl;
        Buffer.add_string buf (instr_to_string i);
        Buffer.add_char buf '\n')
      is
  in
  match node with
  | Block is -> instrs lvl is
  | If { cond = ci, cv; then_; else_ } ->
      instrs lvl ci;
      ind lvl;
      Buffer.add_string buf (Printf.sprintf "if %s {\n" (value_to_string cv));
      List.iter (node_to_buf buf (lvl + 1)) then_;
      if else_ <> [] then begin
        ind lvl;
        Buffer.add_string buf "} else {\n";
        List.iter (node_to_buf buf (lvl + 1)) else_
      end;
      ind lvl;
      Buffer.add_string buf "}\n"
  | Loop l ->
      let ii, iv = l.l_init and bi, bv = l.l_bound in
      instrs lvl ii;
      instrs lvl bi;
      ind lvl;
      Buffer.add_string buf
        (Printf.sprintf "loop#%d %%r%d = %s; %%r%d %s %s; step %+d%s {\n" l.l_id
           l.l_var (value_to_string iv) l.l_var (cmp_to_string l.l_cmp)
           (value_to_string bv) l.l_step
           (match l.l_pragma with
           | Some { Minic.Ast.vectorize_width = Some vf;
                    interleave_count = Some if_; _ } ->
               Printf.sprintf " [vf=%d if=%d]" vf if_
           | _ -> ""));
      List.iter (node_to_buf buf (lvl + 1)) l.l_body;
      ind lvl;
      Buffer.add_string buf "}\n"
  | WhileLoop { w_cond = ci, cv; w_body } ->
      ind lvl;
      Buffer.add_string buf "while {\n";
      instrs (lvl + 1) ci;
      ind (lvl + 1);
      Buffer.add_string buf (Printf.sprintf "cond %s\n" (value_to_string cv));
      List.iter (node_to_buf buf (lvl + 1)) w_body;
      ind lvl;
      Buffer.add_string buf "}\n"
  | Return (Some (ci, v)) ->
      instrs lvl ci;
      ind lvl;
      Buffer.add_string buf (Printf.sprintf "ret %s\n" (value_to_string v))
  | Return None ->
      ind lvl;
      Buffer.add_string buf "ret void\n"
  | BreakN ->
      ind lvl;
      Buffer.add_string buf "break\n"
  | ContinueN ->
      ind lvl;
      Buffer.add_string buf "continue\n"

let func_to_string fn =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s) {\n" fn.fn_name
       (String.concat ", "
          (List.map
             (fun (n, r, s) ->
               Printf.sprintf "%s: %%r%d %s" n r (scalar_ty_to_string s))
             fn.fn_params)));
  List.iter (node_to_buf buf 1) fn.fn_body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let modul_to_string m =
  let buf = Buffer.create 1024 in
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "array %s : %s[%s] align %d\n" a.arr_name
           (scalar_ty_to_string a.arr_elem)
           (String.concat "][" (List.map string_of_int a.arr_dims))
           a.arr_align))
    m.m_arrays;
  List.iter (fun f -> Buffer.add_string buf (func_to_string f)) m.m_funcs;
  Buffer.contents buf
