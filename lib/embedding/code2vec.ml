(** The code2vec model: learned embeddings for path contexts, combined by a
    fully-connected layer and aggregated with soft attention into a single
    fixed-length code vector (Alon et al., POPL 2019 — the embedding
    generator the paper plugs in front of its RL agent).

    For a snippet with contexts {(l, p, r)}:

    {v x_c   = [E_tok[l]; E_path[p]; E_tok[r]]
       h_c   = tanh(W x_c + b)
       alpha = softmax_c (h_c . a)
       code  = sum_c alpha_c h_c v}

    The model trains end-to-end: the RL objective's gradient flows through
    the policy network into [code], and {!backward} pushes it through the
    attention, the combiner, and the embedding tables. *)

type config = {
  d_token : int;
  d_path : int;
  d_code : int;  (** the paper's "340 features" — configurable *)
  vocab : Vocab.t;
  max_contexts : int;
  use_attention : bool;  (** false = mean pooling (ablation) *)
}

let default_config =
  { d_token = 32; d_path = 48; d_code = 128; vocab = Vocab.default;
    max_contexts = 24; use_attention = true }

(** The paper-faithful configuration (340-dimensional code vectors);
    ~3x slower to train than [default_config]. *)
let paper_config = { default_config with d_code = 340 }

type t = {
  cfg : config;
  tok : Nn.Tensor.mat;  (** n_tokens x d_token *)
  g_tok : Nn.Tensor.mat;
  path : Nn.Tensor.mat;  (** n_paths x d_path *)
  g_path : Nn.Tensor.mat;
  combine : Nn.Dense.t;  (** (2 d_token + d_path) -> d_code *)
  attn : Nn.Tensor.vec;  (** d_code *)
  g_attn : Nn.Tensor.vec;
}

let create ?(cfg = default_config) (rng : Nn.Rng.t) : t =
  {
    cfg;
    tok = Nn.Tensor.mat_xavier rng cfg.vocab.Vocab.n_tokens cfg.d_token;
    g_tok = Nn.Tensor.mat_create cfg.vocab.Vocab.n_tokens cfg.d_token;
    path = Nn.Tensor.mat_xavier rng cfg.vocab.Vocab.n_paths cfg.d_path;
    g_path = Nn.Tensor.mat_create cfg.vocab.Vocab.n_paths cfg.d_path;
    combine =
      Nn.Dense.create rng ~in_dim:((2 * cfg.d_token) + cfg.d_path)
        ~out_dim:cfg.d_code;
    attn = Array.init cfg.d_code (fun _ -> Nn.Rng.range rng ~lo:(-0.1) ~hi:0.1);
    g_attn = Nn.Tensor.vec_create cfg.d_code;
  }

(* table row views *)
let row (m : Nn.Tensor.mat) (i : int) : Nn.Tensor.vec =
  Array.sub m.Nn.Tensor.data (i * m.Nn.Tensor.cols) m.Nn.Tensor.cols

let row_add (m : Nn.Tensor.mat) (i : int) (v : Nn.Tensor.vec) : unit =
  let base = i * m.Nn.Tensor.cols in
  for j = 0 to m.Nn.Tensor.cols - 1 do
    m.Nn.Tensor.data.(base + j) <- m.Nn.Tensor.data.(base + j) +. v.(j)
  done

type ids = { li : int; pi : int; ri : int }

type cache = {
  ids : ids array;
  xs : Nn.Tensor.vec array;  (** concatenated inputs *)
  hs : Nn.Tensor.vec array;  (** tanh outputs *)
  alphas : Nn.Tensor.vec;
  code : Nn.Tensor.vec;
  padded : bool;
      (** the snippet had no contexts and [ids] is the synthetic pad —
          its rows alias real vocab rows 0 and must not receive gradient *)
}

(* forward/backward cost is bounded by the model's own max_contexts, no
   matter how many contexts a caller extracted *)
let clamp (t : t) (ids : ids array) : ids array =
  if Array.length ids <= t.cfg.max_contexts then ids
  else Array.sub ids 0 t.cfg.max_contexts

(** Map contexts to vocabulary ids (clamped to [cfg.max_contexts]). *)
let encode (t : t) (ctxs : Ast_path.context list) : ids array =
  let v = t.cfg.vocab in
  ctxs
  |> List.map (fun c ->
         { li = Vocab.token_id v c.Ast_path.left;
           pi = Vocab.path_id v c.Ast_path.path;
           ri = Vocab.token_id v c.Ast_path.right })
  |> Array.of_list |> clamp t

let forward_ids (t : t) (ids : ids array) : cache =
  let ids = clamp t ids in
  let n = max 1 (Array.length ids) in
  let padded = Array.length ids = 0 in
  let ids = if padded then [| { li = 0; pi = 0; ri = 0 } |] else ids in
  let xs =
    Array.map
      (fun { li; pi; ri } ->
        Array.concat [ row t.tok li; row t.path pi; row t.tok ri ])
      ids
  in
  let hs =
    Array.map (fun x -> Nn.Tensor.tanh_fwd (Nn.Dense.forward t.combine x)) xs
  in
  let alphas =
    if t.cfg.use_attention then
      Nn.Tensor.softmax (Array.map (fun h -> Nn.Tensor.dot h t.attn) hs)
    else Array.make n (1.0 /. float_of_int n)
  in
  let code = Nn.Tensor.vec_create t.cfg.d_code in
  for c = 0 to n - 1 do
    Nn.Tensor.axpy ~alpha:alphas.(c) hs.(c) code
  done;
  { ids; xs; hs; alphas; code; padded }

let forward (t : t) (ctxs : Ast_path.context list) : cache =
  forward_ids t (encode t ctxs)

(** One batched inference forward over many snippets, on [arena] scratch
    (see {!Nn.Batch}): packs every (clamped, padded) context of the batch
    into one contiguous input matrix, computes each {e unique} (l, p, r)
    triple's [h = tanh(W x + b)] row exactly once — identical triples
    produce bit-identical rows, so the deduplication cannot change any
    result — then runs each snippet's attention softmax over its own
    segment of occurrences.  Returns the [n x d_code] row-major code
    matrix, an arena slot valid until the arena is reused.  Each row is
    bit-identical to [(forward_ids t ids).code]. *)
let forward_batch (t : t) (arena : Nn.Batch.arena)
    (snippets : ids array array) : Nn.Batch.buf =
  let cfg = t.cfg in
  let d_tok = cfg.d_token and d_path = cfg.d_path and d_code = cfg.d_code in
  let in_dim = (2 * d_tok) + d_path in
  let n = Array.length snippets in
  let counts = Nn.Batch.int_slot arena "c2v.counts" n in
  let total = ref 0 and max_count = ref 1 in
  for s = 0 to n - 1 do
    let c = max 1 (min (Array.length snippets.(s)) cfg.max_contexts) in
    counts.(s) <- c;
    if c > !max_count then max_count := c;
    total := !total + c
  done;
  let total = !total in
  (* map every context occurrence to its unique-triple row *)
  let tbl = arena.Nn.Batch.table in
  Hashtbl.reset tbl;
  let uix = Nn.Batch.int_slot arena "c2v.uix" total in
  let ul = Nn.Batch.int_slot arena "c2v.ul" total in
  let up = Nn.Batch.int_slot arena "c2v.up" total in
  let ur = Nn.Batch.int_slot arena "c2v.ur" total in
  let n_tok = cfg.vocab.Vocab.n_tokens and n_path = cfg.vocab.Vocab.n_paths in
  let uniq = ref 0 and occ = ref 0 in
  for s = 0 to n - 1 do
    let ids = snippets.(s) in
    for c = 0 to counts.(s) - 1 do
      let { li; pi; ri } =
        if Array.length ids = 0 then { li = 0; pi = 0; ri = 0 } else ids.(c)
      in
      let key = (((li * n_path) + pi) * n_tok) + ri in
      let u =
        match Hashtbl.find_opt tbl key with
        | Some u -> u
        | None ->
            let u = !uniq in
            Hashtbl.add tbl key u;
            ul.(u) <- li;
            up.(u) <- pi;
            ur.(u) <- ri;
            incr uniq;
            u
      in
      uix.(!occ) <- u;
      incr occ
    done
  done;
  let uniq = !uniq in
  (* gather the unique [E_tok[l]; E_path[p]; E_tok[r]] input rows *)
  let x = Nn.Batch.slot arena "c2v.x" (uniq * in_dim) in
  for u = 0 to uniq - 1 do
    let off = u * in_dim in
    Nn.Batch.blit_mat_row ~src:t.tok ~row:ul.(u) ~dst:x ~dst_off:off;
    Nn.Batch.blit_mat_row ~src:t.path ~row:up.(u) ~dst:x
      ~dst_off:(off + d_tok);
    Nn.Batch.blit_mat_row ~src:t.tok ~row:ur.(u) ~dst:x
      ~dst_off:(off + d_tok + d_path)
  done;
  (* h_u = tanh(W x_u + b), once per unique triple *)
  let h = Nn.Batch.slot arena "c2v.h" (uniq * d_code) in
  Nn.Dense.forward_rows t.combine ~x ~y:h ~rows:uniq;
  Nn.Batch.tanh_inplace h ~len:(uniq * d_code);
  (* per-snippet attention over its own segment, accumulated into codes *)
  let codes = Nn.Batch.slot arena "c2v.codes" (max 1 (n * d_code)) in
  let scores = Nn.Batch.float_slot arena "c2v.scores" !max_count in
  let off = ref 0 in
  for s = 0 to n - 1 do
    let nc = counts.(s) in
    (if cfg.use_attention then begin
       for c = 0 to nc - 1 do
         scores.(c) <- Nn.Batch.dot_row h ~off:(uix.(!off + c) * d_code) t.attn
       done;
       Nn.Batch.softmax_inplace scores ~n:nc
     end
     else
       let a = 1.0 /. float_of_int nc in
       for c = 0 to nc - 1 do
         scores.(c) <- a
       done);
    let cbase = s * d_code in
    Nn.Batch.fill_zero_row codes ~off:cbase ~len:d_code;
    for c = 0 to nc - 1 do
      Nn.Batch.axpy_row ~alpha:scores.(c) ~src:h
        ~src_off:(uix.(!off + c) * d_code) ~dst:codes ~dst_off:cbase
        ~len:d_code
    done;
    off := !off + nc
  done;
  codes

(** Push dL/dcode back through attention, combiner, and tables. *)
let backward (t : t) (c : cache) ~(dcode : Nn.Tensor.vec) : unit =
  let n = Array.length c.ids in
  let d_tok = t.cfg.d_token and d_path = t.cfg.d_path in
  (* attention backward *)
  let dalpha = Array.map (fun h -> Nn.Tensor.dot dcode h) c.hs in
  let mean = ref 0.0 in
  for k = 0 to n - 1 do
    mean := !mean +. (c.alphas.(k) *. dalpha.(k))
  done;
  for ci = 0 to n - 1 do
    let ds =
      if t.cfg.use_attention then c.alphas.(ci) *. (dalpha.(ci) -. !mean)
      else 0.0
    in
    (* dL/dh_c = alpha_c * dcode + ds * attn;  da += ds * h_c *)
    let dh = Nn.Tensor.vec_create t.cfg.d_code in
    Nn.Tensor.axpy ~alpha:c.alphas.(ci) dcode dh;
    Nn.Tensor.axpy ~alpha:ds t.attn dh;
    Nn.Tensor.axpy ~alpha:ds c.hs.(ci) t.g_attn;
    (* tanh + dense backward *)
    let dz = Nn.Tensor.tanh_bwd c.hs.(ci) dh in
    let dx = Nn.Dense.backward t.combine ~x:c.xs.(ci) ~dy:dz in
    (* split dx into the three table rows — unless this is the synthetic
       pad of an empty snippet, whose ids alias real vocab rows 0 and
       must not train them *)
    if not c.padded then begin
      let { li; pi; ri } = c.ids.(ci) in
      row_add t.g_tok li (Array.sub dx 0 d_tok);
      row_add t.g_path pi (Array.sub dx d_tok d_path);
      row_add t.g_tok ri (Array.sub dx (d_tok + d_path) d_tok)
    end
  done

let params (t : t) : Nn.Optim.params =
  [ (t.tok.Nn.Tensor.data, t.g_tok.Nn.Tensor.data);
    (t.path.Nn.Tensor.data, t.g_path.Nn.Tensor.data);
    (t.attn, t.g_attn) ]
  @ Nn.Dense.params t.combine

let zero_grad (t : t) : unit =
  Nn.Tensor.mat_fill_zero t.g_tok;
  Nn.Tensor.mat_fill_zero t.g_path;
  Nn.Tensor.fill_zero t.g_attn;
  Nn.Dense.zero_grad t.combine
