(** Memory dependence analysis for the innermost-loop vectorizer.

    Implements the distance-vector test LLVM's LoopAccessAnalysis performs:
    for every pair of accesses to the same array where at least one is a
    store, the two index functions must differ only in their constant term
    (same coefficients for the induction variable and every invariant
    symbol); the difference divided by the per-iteration stride is the
    dependence distance in iterations. A forward store→load distance [d]
    limits the vectorization factor to [d]; any pair the test cannot
    disambiguate makes the loop non-vectorizable. *)

type dependence = {
  dep_base : string;
  dep_distance : int;  (** in iterations; > 0 means crosses iterations *)
  dep_store_first : bool;
      (** true: the pair constrains VF — a flow dependence, or any pair
          statement-wise widening would reorder within a vector block *)
}

type verdict = {
  max_safe_vf : int;  (** includes [unbounded] when no constraint; 1 = scalar *)
  dependences : dependence list;
  unknown_pair : (string * string) option;
      (** an un-analyzable pair (base names), if any *)
}

let unbounded = 4096

(** Test one pair of accesses to the same base. [iter_coeff] is the index
    change per iteration (coeff of the loop var × loop step) — must match
    between the two accesses. Returns [Error ()] when not analyzable. *)
let test_pair (l : Ir.loop) (a : Access.access) (b : Access.access) :
    (dependence option, unit) result =
  let ca = Scev.coeff_of l.Ir.l_var a.Access.acc_index * l.Ir.l_step in
  match Scev.const_delta a.Access.acc_index b.Access.acc_index with
  | None ->
      (* Coefficients differ (e.g. a[i] vs a[2*i]) or symbols differ
         (a[i+n] vs a[i+m]) or non-affine: cannot disambiguate. The only
         benign case: both are loads — but callers only pass store pairs. *)
      Error ()
  | Some delta ->
      (* identical coefficients; ca = cb *)
      if ca = 0 then
        (* loop-invariant address touched every iteration by a store:
           distance 0 in address but iteration-crossing (e.g. a[0] += ...).
           Treat as unvectorizable unless delta <> 0 (then no alias). *)
        if delta = 0 then Error () else Ok None
      else if delta mod ca <> 0 then
        (* constant offset not a multiple of the stride: the accesses
           interleave without ever colliding *)
        Ok None
      else
        let d = delta / ca in
        if d = 0 then Ok None (* same iteration, ordered by program order *)
        else
          Ok
            (Some
               { dep_base = a.Access.acc_base;
                 dep_distance = abs d;
                 dep_store_first =
                   (* A at iteration n+d collides with B at iteration n
                      (d > 0): B is the earlier access in scalar time, but
                      A comes first in program order, so statement-wise
                      widening runs all of A's lanes before B's — the pair
                      is REORDERED whenever both land in one vector block
                      (VF > d).  With a store on either side the reorder is
                      observable (store→load reads the new value early,
                      load→store is a flow dep, store→store flips the final
                      writer), so every d > 0 pair constrains VF.  d < 0
                      keeps program order = scalar order; constraining on
                      [a] being the store is conservative but keeps
                      existing verdicts stable. *)
                   (if d > 0 then true else a.Access.acc_is_store) })

(** Analyze all access pairs of a loop. *)
let analyze (l : Ir.loop) (accesses : Access.access list) : verdict =
  let deps = ref [] in
  let unknown = ref None in
  let arr = Array.of_list accesses in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if a.Access.acc_base = b.Access.acc_base
         && (a.Access.acc_is_store || b.Access.acc_is_store)
      then
        match test_pair l a b with
        | Ok (Some d) -> deps := d :: !deps
        | Ok None -> ()
        | Error () ->
            if !unknown = None then
              unknown := Some (a.Access.acc_base, b.Access.acc_base)
    done
  done;
  let max_safe =
    if !unknown <> None then 1
    else
      List.fold_left
        (fun acc d ->
          if d.dep_store_first then
            (* flow dependence at distance d: lanes within one vector
               iteration must not span the writer and its reader *)
            min acc d.dep_distance
          else
            (* anti/output dependence: vector execution preserves order
               because all lanes read before the (later) store instruction
               executes — no constraint beyond program order *)
            acc)
        unbounded !deps
  in
  { max_safe_vf = max max_safe 1; dependences = List.rev !deps;
    unknown_pair = !unknown }
