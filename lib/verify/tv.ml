(** Inline translation validation (ROADMAP item 4).

    Given a scalar reference module and the transformed module a plan
    produced, interpret both over a small content-derived input set and
    decide equivalence.  This promotes the offline differential suite
    (test/test_differential.ml) into an always-available oracle the reward
    loop can run per (program, plan): a refutation becomes the
    [Miscompiled] failure kind in the reward taxonomy, carrying a
    counterexample naming the input, the first diverging memory cell and
    both values.

    {b Determinism.}  The input set is a pure function of the caller's
    content [key] (hash of program + applied plan): a fixed simplicity
    ladder — all-zero memory, a small ramp, then two seeded fills whose
    seeds come from the digest of the key.  No wall clock, no shared RNG,
    so a [--jobs N] sweep verifies exactly the inputs a [--jobs 1] sweep
    verifies and both produce bit-identical verdicts.  Inputs are tried in
    simplicity order and the first refuting input reports, so the
    counterexample is minimized by construction: a plan refuted on zeros
    never reports a noisy seeded fill.

    {b Tolerance policy.}  Integer memory and integer results must match
    bit for bit.  Float observations accept a relative error of {!tol}
    (matching the differential suite): vectorizing a float reduction
    reassociates the sum, which is a legal rounding change, not a
    miscompile.  NaN equals NaN.  A scalar-side trap on some input skips
    that input (the reference itself cannot evaluate there); a trap only
    on the transformed side is a refutation. *)

exception Miscompile of string
(** Raised by callers (the pipeline) when a plan's verdict is a
    refutation; carries the rendered counterexample.  Deliberately NOT a
    transient failure: a miscompile is a pure function of (program, plan),
    so the supervisor must never retry it. *)

(* ------------------------------------------------------------------ *)
(* Execution engine                                                     *)
(* ------------------------------------------------------------------ *)

(** Which engine interprets kernels.  [Vm] compiles modules to {!Ir_vm}
    bytecode (content-addressed, cached) and falls back to the tree
    walker for anything outside the compiler's bit-exact subset; [Interp]
    forces the tree-walking reference.  Verdicts are bit-identical either
    way — that is the VM's contract, enforced by the differential suite —
    so this knob exists for benchmarking and for the CI differential
    gate, not for correctness. *)
type engine = Vm | Interp

let engine_of_env () : engine =
  match Sys.getenv_opt "NEUROVEC_TV_ENGINE" with
  | Some ("interp" | "tree") -> Interp
  | Some "vm" | None -> Vm
  | Some other ->
      Printf.eprintf
        "neurovec: unknown NEUROVEC_TV_ENGINE=%S (want vm|interp); using vm\n\
         %!"
        other;
      Vm

let cur_engine : engine Atomic.t = Atomic.make (engine_of_env ())
let set_engine (e : engine) : unit = Atomic.set cur_engine e
let engine () : engine = Atomic.get cur_engine

(* steps executed by the tree walker on behalf of verification (the VM
   counts its own in [Ir_vm.stats]); polled by [Stats.snapshot] *)
let c_tree_steps = Atomic.make 0
let tree_steps () : int = Atomic.get c_tree_steps

(* scalar-run cache FIFO evictions; polled by [Stats.snapshot] *)
let c_sc_evictions = Atomic.make 0
let sc_evictions () : int = Atomic.get c_sc_evictions

let reset_counters () : unit =
  Atomic.set c_tree_steps 0;
  Atomic.set c_sc_evictions 0

(* ------------------------------------------------------------------ *)
(* Content-derived inputs                                               *)
(* ------------------------------------------------------------------ *)

type input =
  | Zeros  (** every array cell zero — the simplest possible memory *)
  | Ramp  (** small signed ramp, cell i = (i mod 7) - 3, exercising sign *)
  | Hashed of int  (** the interpreter's seeded deterministic fill *)

let input_name = function
  | Zeros -> "zeros"
  | Ramp -> "ramp"
  | Hashed s -> Printf.sprintf "hashed(seed=%d)" s

(* two seeds from the digest bytes of the content key: deterministic in
   hash(program, plan), nonzero, independent of process state *)
let seeds_of_key (key : string) : int * int =
  let d = Digest.string key in
  let byte i = Char.code d.[i] in
  let word k =
    (byte k lor (byte (k + 1) lsl 8) lor (byte (k + 2) lsl 16)
    lor (byte (k + 3) lsl 24))
    land 0x3FFFFFFF
  in
  (1 + word 0, 1 + word 4)

(** The verification inputs for [key], in simplicity order (the order
    defines counterexample minimality). *)
let inputs_of_key (key : string) : input list =
  let s1, s2 = seeds_of_key key in
  [ Zeros; Ramp; Hashed s1; Hashed s2 ]

let state_for (m : Ir.modul) (inp : input) : Ir_interp.state =
  match inp with
  | Hashed s -> Ir_interp.init_state ~seed:s m
  | Zeros ->
      let st = Ir_interp.init_state m in
      Hashtbl.iter
        (fun _ mem ->
          match mem with
          | Ir_interp.MI a -> Array.fill a 0 (Array.length a) 0L
          | Ir_interp.MF a -> Array.fill a 0 (Array.length a) 0.0)
        st.Ir_interp.mem;
      st
  | Ramp ->
      let st = Ir_interp.init_state m in
      Hashtbl.iter
        (fun _ mem ->
          match mem with
          | Ir_interp.MI a ->
              Array.iteri
                (fun i _ -> a.(i) <- Int64.of_int ((i mod 7) - 3))
                a
          | Ir_interp.MF a ->
              Array.iteri
                (fun i _ -> a.(i) <- float_of_int ((i mod 7) - 3) *. 0.5)
                a)
        st.Ir_interp.mem;
      st

(* ------------------------------------------------------------------ *)
(* Running and comparing                                                *)
(* ------------------------------------------------------------------ *)

(** Documented ULP/relative tolerance for float observations — identical
    to the differential suite's: vectorized reductions reassociate. *)
let tol = 1e-3

let close (a : float) (b : float) : bool =
  Int64.bits_of_float a = Int64.bits_of_float b
  || abs_float (a -. b) <= tol *. (abs_float a +. abs_float b +. 1.0)
  || (Float.is_nan a && Float.is_nan b)

type run = {
  run_rv : Ir_interp.rvalue_v option;
  run_mem : (string * Ir_interp.mem) list;  (** sorted by array name *)
}

let find_fn (m : Ir.modul) (name : string) : Ir.func option =
  List.find_opt (fun f -> f.Ir.fn_name = name) m.Ir.m_funcs

let mem_assoc_of_state (st : Ir_interp.state) :
    (string * Ir_interp.mem) list =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.Ir_interp.mem [])

let run_kernel_tree (m : Ir.modul) ~(kernel : string) (inp : input) :
    (run, string) result =
  match find_fn m kernel with
  | None -> Error (Printf.sprintf "kernel %s not found" kernel)
  | Some fn -> (
      let st = state_for m inp in
      let count () =
        ignore (Atomic.fetch_and_add c_tree_steps st.Ir_interp.steps)
      in
      match Ir_interp.run_func st fn () with
      | r ->
          count ();
          Ok { run_rv = r; run_mem = mem_assoc_of_state st }
      | exception Ir_interp.Trap msg ->
          count ();
          Error msg)

(** Interpret [kernel] of [m] on [inp].  When the engine is [Vm] and the
    caller supplies [vm_key] (a content key uniquely identifying the
    module's semantics), the kernel runs as cached {!Ir_vm} bytecode over
    the same input memory — bit-identical results, traps, and fuel by the
    VM's contract; modules outside the compiled subset fall back to the
    tree walker. *)
let run_kernel ?(vm_key : string option) (m : Ir.modul) ~(kernel : string)
    (inp : input) : (run, string) result =
  match vm_key with
  | Some key when engine () = Vm -> (
      match Ir_vm.load ~key m ~kernel with
      | None -> run_kernel_tree m ~kernel inp
      | Some prog -> (
          let st = state_for m inp in
          let mem = mem_assoc_of_state st in
          match Ir_vm.run prog ~mem () with
          | out -> Ok { run_rv = out.Ir_vm.o_result; run_mem = mem }
          | exception Ir_interp.Trap msg -> Error msg
          | exception Ir_vm.Deopt ->
              (* the VM abandoned the native-int invariant mid-run;
                 [mem] may be partially mutated — rerun from fresh state *)
              run_kernel_tree m ~kernel inp))
  | _ -> run_kernel_tree m ~kernel inp

type counterexample = {
  cx_input : string;  (** which derived input refuted the plan *)
  cx_cell : string;  (** first diverging observation, e.g. ["a[3]"] *)
  cx_scalar : string;  (** the scalar reference's value there *)
  cx_vector : string;  (** the transformed module's value there *)
}

type verdict = Equivalent | Refuted of counterexample

let render (cx : counterexample) : string =
  Printf.sprintf "input=%s cell=%s scalar=%s vector=%s" cx.cx_input
    cx.cx_cell cx.cx_scalar cx.cx_vector

let show_value = function
  | None -> "none"
  | Some (Ir_interp.VI i) -> Int64.to_string i
  | Some (Ir_interp.VF f) -> Printf.sprintf "%h" f
  | Some (Ir_interp.VVI _ | Ir_interp.VVF _) -> "<vector>"

let value_equiv (a : Ir_interp.rvalue_v option)
    (b : Ir_interp.rvalue_v option) : bool =
  match (a, b) with
  | Some (Ir_interp.VF x), Some (Ir_interp.VF y) -> close x y
  | _ -> a = b

(* first diverging cell across both memories, scanning arrays in sorted
   name order and each array from index 0, so the reported cell is the
   lexicographically first divergence *)
let first_divergence (s : run) (v : run) : counterexample option =
  let refute cell sc vec =
    Some { cx_input = ""; cx_cell = cell; cx_scalar = sc; cx_vector = vec }
  in
  if List.map fst s.run_mem <> List.map fst v.run_mem then
    refute "arrays" "reference array set" "different array set"
  else
    List.fold_left2
      (fun acc (name, ms) (_, mv) ->
        match acc with
        | Some _ -> acc
        | None -> (
            match (ms, mv) with
            | Ir_interp.MI a, Ir_interp.MI b ->
                if Array.length a <> Array.length b then
                  refute name
                    (Printf.sprintf "%d cells" (Array.length a))
                    (Printf.sprintf "%d cells" (Array.length b))
                else begin
                  let bad = ref None in
                  Array.iteri
                    (fun i x ->
                      if !bad = None && x <> b.(i) then bad := Some i)
                    a;
                  match !bad with
                  | None -> None
                  | Some i ->
                      refute
                        (Printf.sprintf "%s[%d]" name i)
                        (Int64.to_string a.(i))
                        (Int64.to_string b.(i))
                end
            | Ir_interp.MF a, Ir_interp.MF b ->
                if Array.length a <> Array.length b then
                  refute name
                    (Printf.sprintf "%d cells" (Array.length a))
                    (Printf.sprintf "%d cells" (Array.length b))
                else begin
                  let bad = ref None in
                  Array.iteri
                    (fun i x ->
                      if !bad = None && not (close x b.(i)) then
                        bad := Some i)
                    a;
                  match !bad with
                  | None -> None
                  | Some i ->
                      refute
                        (Printf.sprintf "%s[%d]" name i)
                        (Printf.sprintf "%h" a.(i))
                        (Printf.sprintf "%h" b.(i))
                end
            | _ -> refute name "int array" "float array"))
      None s.run_mem v.run_mem

let compare_runs ~(inp : input) (s : run) (v : run) : verdict =
  if not (value_equiv s.run_rv v.run_rv) then
    Refuted
      { cx_input = input_name inp; cx_cell = "result";
        cx_scalar = show_value s.run_rv; cx_vector = show_value v.run_rv }
  else
    match first_divergence s v with
    | None -> Equivalent
    | Some cx -> Refuted { cx with cx_input = input_name inp }

(* ------------------------------------------------------------------ *)
(* Sabotage (the [miscompile=P] fault knob)                             *)
(* ------------------------------------------------------------------ *)

(* Corrupt one memory cell of a transformed run, deterministically in the
   content key: the first non-empty array in sorted name order, at index
   hash(key) mod length.  Integers get +1; floats get a change guaranteed
   to exceed the relative tolerance.  When the module has no arrays the
   return value is corrupted instead.  This simulates a wrong-code
   transform so tests (and the CI smoke) can watch the validator catch it
   with a minimized counterexample. *)

let str_hash (s : string) : int =
  let h = ref 5381 in
  String.iter
    (fun c -> h := (((!h lsl 5) + !h + Char.code c)) land 0x3FFFFFF)
    s;
  !h

let sabotage_run ~(key : string) (v : run) : run =
  let corrupted = ref false in
  let mem =
    List.map
      (fun (name, m) ->
        match m with
        | _ when !corrupted -> (name, m)
        | Ir_interp.MI a when Array.length a > 0 ->
            corrupted := true;
            let a = Array.copy a in
            let i = str_hash key mod Array.length a in
            a.(i) <- Int64.add a.(i) 1L;
            (name, Ir_interp.MI a)
        | Ir_interp.MF a when Array.length a > 0 ->
            corrupted := true;
            let a = Array.copy a in
            let i = str_hash key mod Array.length a in
            a.(i) <- (a.(i) *. 1.01) +. 1.0;
            (name, Ir_interp.MF a)
        | m -> (name, m))
      v.run_mem
  in
  if !corrupted then { v with run_mem = mem }
  else
    { v with
      run_rv =
        (match v.run_rv with
        | Some (Ir_interp.VI i) -> Some (Ir_interp.VI (Int64.add i 1L))
        | Some (Ir_interp.VF f) -> Some (Ir_interp.VF ((f *. 1.01) +. 1.0))
        | rv -> rv) }

(* ------------------------------------------------------------------ *)
(* Scalar-run cache                                                     *)
(* ------------------------------------------------------------------ *)

(* The scalar reference's final state depends only on (scalar module,
   input), never on the plan under verification, so one program's scalar
   runs are shared by every plan of its sweep.  Cached runs are read-only
   after commit (first commit wins; racing recomputation is
   deterministic).  The table is a pure cache, bounded like the
   [Frontend] shards: a FIFO queue remembers insertion order and the
   oldest entries are evicted past the cap ([NEUROVEC_TV_CAP]), so a
   long-lived daemon keeps its warm entries instead of periodically
   losing the whole table to a reset.  {!clear_cache} hooks into
   [Frontend.clear]. *)

let sc_cap =
  match Sys.getenv_opt "NEUROVEC_TV_CAP" with
  | None -> 4096
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf
            "neurovec: unparseable NEUROVEC_TV_CAP=%S, using the default \
             4096\n\
             %!"
            s;
          4096)

let sc_lock = Mutex.create ()

let sc_tbl : (string, (run, string) result) Hashtbl.t = Hashtbl.create 256
let sc_order : string Queue.t = Queue.create ()

let clear_cache () : unit =
  Mutex.protect sc_lock (fun () ->
      Hashtbl.reset sc_tbl;
      Queue.clear sc_order);
  Ir_vm.clear_cache ()

let scalar_run ~(scalar_key : string) ~(kernel : string)
    (scalar : Ir.modul) (inp : input) : (run, string) result =
  let k = scalar_key ^ "|" ^ input_name inp in
  match Mutex.protect sc_lock (fun () -> Hashtbl.find_opt sc_tbl k) with
  | Some r -> r
  | None -> (
      let r = run_kernel ~vm_key:scalar_key scalar ~kernel inp in
      Mutex.protect sc_lock (fun () ->
          match Hashtbl.find_opt sc_tbl k with
          | Some winner -> winner
          | None ->
              Hashtbl.replace sc_tbl k r;
              Queue.add k sc_order;
              while
                Hashtbl.length sc_tbl > sc_cap
                && not (Queue.is_empty sc_order)
              do
                let oldest = Queue.pop sc_order in
                if Hashtbl.mem sc_tbl oldest then begin
                  Hashtbl.remove sc_tbl oldest;
                  Atomic.incr c_sc_evictions
                end
              done;
              r))

(* ------------------------------------------------------------------ *)
(* The verdict                                                          *)
(* ------------------------------------------------------------------ *)

(** Decide whether [transformed] computes the scalar reference's function
    on the input set derived from [key].  [scalar_key] identifies the
    scalar reference for the scalar-run cache (it must not depend on the
    plan); [sabotage] corrupts the transformed run (the [miscompile]
    fault knob) so the refutation machinery can be exercised end to end.
    Inputs where the scalar reference itself traps are skipped; a trap
    only in the transformed module refutes. *)
let verify ?(sabotage = false) ~(key : string) ~(scalar : Ir.modul)
    ~(scalar_key : string) ~(kernel : string) (transformed : Ir.modul) :
    verdict =
  let rec go = function
    | [] -> Equivalent
    | inp :: rest -> (
        match scalar_run ~scalar_key ~kernel scalar inp with
        | Error _ -> go rest (* the reference cannot evaluate this input *)
        | Ok s -> (
            match run_kernel ~vm_key:key transformed ~kernel inp with
            | Error msg ->
                Refuted
                  { cx_input = input_name inp; cx_cell = "trap";
                    cx_scalar = "completed"; cx_vector = msg }
            | Ok v -> (
                let v = if sabotage then sabotage_run ~key v else v in
                match compare_runs ~inp s v with
                | Equivalent -> go rest
                | refuted -> refuted)))
  in
  go (inputs_of_key key)
