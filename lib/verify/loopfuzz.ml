(** A legality fuzzer: generate loops biased toward dependence
    boundaries, vectorize them with plans {!Vectorizer.Legality.clamp}
    accepts, and ask {!Tv} whether the transform preserved semantics.

    The generator deliberately concentrates on the shapes where the
    distance-vector dependence test earns (or loses) its keep: tight reuse
    distances (loop-carried reads at distance < VF), stores read ahead of
    the writer, float reductions whose value order a vectorizer
    reassociates, aliasing store pairs, and mixed-stride gathers.  Every
    case is deterministic in the seed — same seed, same programs, same
    plans, same verdicts — so a refutation found in CI reproduces locally
    with [neurovec fuzz --legality --seed N].

    This is self-contained on purpose: it parses, lowers and transforms
    through the same passes the pipeline's shared-artifact path uses
    (LICM/CSE/LICM, [prepare_modul] + [run_prepared], LICM) and keys
    {!Tv}'s scalar-run cache by source digest, so a fuzz run cannot
    perturb (or be perturbed by) reward sweeps in the same process. *)

type case = {
  c_program : Dataset.Program.t;
  c_vf : int;  (** requested vectorization factor (pre-clamp) *)
  c_if : int;  (** requested interleave count (pre-clamp) *)
}

type refutation = {
  r_name : string;
  r_source : string;
  r_vf : int;
  r_if : int;
  r_applied : string;  (** per-loop applied plans after clamping *)
  r_cx : string;  (** rendered {!Tv.counterexample} *)
}

(* ------------------------------------------------------------------ *)
(* Dependence-boundary loop families                                    *)
(* ------------------------------------------------------------------ *)

(* Each generator returns (globals, loop body, return expression); bounds
   stay small so a verification (4 inputs x 2 interpreter runs) is cheap
   enough for thousands of fuzz iterations. *)

type pieces = { globals : string list; body : string; ret : string }

let pick_n (rng : Nn.Rng.t) : int = 64 + (8 * Nn.Rng.int rng 9)

(* loop-carried flow dependence at a tight distance: a[i] = a[i-d] + c *)
let gen_recurrence rng =
  let n = pick_n rng in
  let d = 1 + Nn.Rng.int rng 8 in
  let c = 1 + Nn.Rng.int rng 5 in
  { globals = [ Printf.sprintf "int a[%d];" (n + d) ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = %d; i < %d; i++) {\n    a[i] = a[i - %d] + \
         %d;\n  }"
        d n d c;
    ret = Printf.sprintf "a[%d]" (n - 1) }

(* a store read ahead of the writer by a later statement: widening runs
   all of the store's lanes before the load's, so VF > k reads new values
   the scalar loop would not have seen yet *)
let gen_store_load_ahead rng =
  let n = pick_n rng in
  let k = 1 + Nn.Rng.int rng 4 in
  { globals =
      [ Printf.sprintf "int a[%d];" (n + k);
        Printf.sprintf "int b[%d];" (n + k);
        Printf.sprintf "int c[%d];" (n + k) ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < %d; i++) {\n    a[i] = b[i] * 2;\n    \
         c[i] = a[i + %d] + 1;\n  }"
        n k;
    ret = Printf.sprintf "c[%d] + a[%d]" (n / 2) (n / 3) }

(* the mirror image: a load of a cell a later statement stores (anti
   dependence across statements) *)
let gen_load_store_behind rng =
  let n = pick_n rng in
  let k = 1 + Nn.Rng.int rng 4 in
  { globals =
      [ Printf.sprintf "int a[%d];" (n + k);
        Printf.sprintf "int b[%d];" (n + k) ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < %d; i++) {\n    b[i] = a[i + %d] - 1;\n\
        \    a[i] = b[i] + 3;\n  }"
        n k;
    ret = Printf.sprintf "a[%d] + b[%d]" (n / 2) (n / 4) }

(* float reduction: reassociation under vectorization must stay within
   the documented tolerance, never outside it *)
let gen_float_reduction rng =
  let n = pick_n rng in
  let ty = if Nn.Rng.int rng 2 = 0 then "float" else "double" in
  let form = Nn.Rng.int rng 2 in
  let update =
    if form = 0 then "s += x[i] * y[i];" else "s += x[i] + y[i];"
  in
  { globals =
      [ Printf.sprintf "%s x[%d];" ty n; Printf.sprintf "%s y[%d];" ty n ];
    body =
      Printf.sprintf
        "  %s s = 0;\n  int i;\n  for (i = 0; i < %d; i++) {\n    %s\n  }"
        ty n update;
    ret = "(int) s" }

(* two stores to the same array at offset k: an output dependence whose
   final writer must survive widening *)
let gen_aliasing_stores rng =
  let n = pick_n rng in
  let k = 1 + Nn.Rng.int rng 4 in
  { globals =
      [ Printf.sprintf "int a[%d];" (n + k);
        Printf.sprintf "int b[%d];" (n + k);
        Printf.sprintf "int c[%d];" (n + k) ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < %d; i++) {\n    a[i] = b[i] + 1;\n    \
         a[i + %d] = c[i] * 2;\n  }"
        n k;
    ret = Printf.sprintf "a[%d] + a[%d]" (n / 2) (n - 1) }

(* mixed-stride gather: strides 2 and 3 off one source array *)
let gen_mixed_stride rng =
  let n = pick_n rng in
  { globals =
      [ Printf.sprintf "int d[%d];" n;
        Printf.sprintf "int s[%d];" ((3 * n) + 2) ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < %d; i++) {\n    d[i] = s[3 * i] + s[2 \
         * i + 1];\n  }"
        n;
    ret = Printf.sprintf "d[%d]" (n / 2) }

let families =
  [| ("recurrence", gen_recurrence);
     ("store_load_ahead", gen_store_load_ahead);
     ("load_store_behind", gen_load_store_behind);
     ("float_reduction", gen_float_reduction);
     ("aliasing_stores", gen_aliasing_stores);
     ("mixed_stride", gen_mixed_stride) |]

let vf_pool = [| 2; 4; 8; 16 |]
let if_pool = [| 1; 2; 4 |]

let gen_case (rng : Nn.Rng.t) (idx : int) : case =
  let family, gen = Nn.Rng.choose rng families in
  let p = gen rng in
  let source =
    Printf.sprintf "%s\n\nint kernel() {\n%s\n  return %s;\n}\n"
      (String.concat "\n" p.globals)
      p.body p.ret
  in
  { c_program =
      Dataset.Program.make ~family
        (Printf.sprintf "fuzz_%s_%05d" family idx)
        source;
    c_vf = Nn.Rng.choose rng vf_pool;
    c_if = Nn.Rng.choose rng if_pool }

(** [n] dependence-boundary cases, deterministic in [seed]. *)
let generate ~(seed : int) (n : int) : case array =
  let rng = Nn.Rng.create seed in
  Array.init n (fun i -> gen_case rng i)

(* ------------------------------------------------------------------ *)
(* The oracle                                                           *)
(* ------------------------------------------------------------------ *)

let plans_sig (report : Vectorizer.Planner.report) : string =
  String.concat ";"
    (List.map
       (fun d ->
         Printf.sprintf "%d,%d"
           d.Vectorizer.Planner.d_applied.Vectorizer.Transform.vf
           d.Vectorizer.Planner.d_applied.Vectorizer.Transform.if_)
       report)

(** Vectorize [p] under the requested (vf, if) — clamped by legality,
    exactly as the pipeline's shared-artifact path does — and return the
    translation-validation verdict plus the applied plans.  Raises
    whatever the front end raises on a malformed program (the generators
    never produce one). *)
let check (p : Dataset.Program.t) ~(vf : int) ~(if_ : int) :
    Tv.verdict * string =
  let bindings = p.Dataset.Program.p_bindings in
  let prog = Minic.Parser.parse_string p.Dataset.Program.p_source in
  ignore (Minic.Sema.analyze ~bindings prog);
  let scalar = Ir_lower.lower_program ~bindings prog in
  let m = Ir_lower.lower_program ~bindings prog in
  ignore (Vectorizer.Licm.run_modul m);
  ignore (Vectorizer.Cse.run_modul m);
  ignore (Vectorizer.Licm.run_modul m);
  let preps = Vectorizer.Planner.prepare_modul m in
  let report =
    Vectorizer.Planner.run_prepared
      ~plan:(Some { Vectorizer.Transform.vf; if_ })
      m preps
  in
  ignore (Vectorizer.Licm.run_modul m);
  let psig = plans_sig report in
  let kernel = p.Dataset.Program.p_kernel in
  (* content-addressed, never the program name: fuzz names repeat across
     seeds (fuzz_<family>_00003 exists for every seed), and Tv's
     scalar-run cache must not serve one seed's reference to another's *)
  let src_hash = Digest.to_hex (Digest.string p.Dataset.Program.p_source) in
  let key =
    Printf.sprintf "%s|%s|vf=%d,if=%d|%s" src_hash kernel vf if_ psig
  in
  (Tv.verify ~key ~scalar ~scalar_key:(src_hash ^ "|" ^ kernel) ~kernel m, psig)

type hunt_stats = {
  hs_requested : int;  (** iterations asked for *)
  hs_ran : int;  (** cases actually executed before any deadline *)
  hs_elapsed_s : float;  (** wall seconds spent *)
  hs_deadline_hit : bool;  (** the hunt was truncated by [deadline_s] *)
  hs_families : (string * int) list;
      (** cases run per dependence-boundary family, sorted by name — CI
          logs show coverage, not just pass/fail *)
}

(** Run [iterations] fuzz cases from [seed]; returns the refutations and
    coverage statistics.  [deadline_s] (wall seconds) only truncates the
    iteration count — verdicts of the cases that do run are bit-identical
    whatever the deadline, so a CI-bounded hunt that finds a refutation
    reproduces by seed. *)
let hunt ?(deadline_s : float option) ~(seed : int) ~(iterations : int) () :
    refutation list * hunt_stats =
  let t0 = Unix.gettimeofday () in
  let cases = generate ~seed iterations in
  let refuted = ref [] in
  let ran = ref 0 in
  let deadline_hit = ref false in
  let fam_counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  (try
     Array.iter
       (fun c ->
         (match deadline_s with
         | Some d when Unix.gettimeofday () -. t0 > d ->
             deadline_hit := true;
             raise Exit
         | _ -> ());
         incr ran;
         let fam = c.c_program.Dataset.Program.p_family in
         Hashtbl.replace fam_counts fam
           (1 + Option.value ~default:0 (Hashtbl.find_opt fam_counts fam));
         match check c.c_program ~vf:c.c_vf ~if_:c.c_if with
         | Tv.Equivalent, _ -> ()
         | Tv.Refuted cx, psig ->
             refuted :=
               { r_name = c.c_program.Dataset.Program.p_name;
                 r_source = c.c_program.Dataset.Program.p_source;
                 r_vf = c.c_vf; r_if = c.c_if; r_applied = psig;
                 r_cx = Tv.render cx }
               :: !refuted)
       cases
   with Exit -> ());
  let stats =
    { hs_requested = iterations;
      hs_ran = !ran;
      hs_elapsed_s = Unix.gettimeofday () -. t0;
      hs_deadline_hit = !deadline_hit;
      hs_families =
        List.sort compare
          (Hashtbl.fold (fun k n acc -> (k, n) :: acc) fam_counts []) }
  in
  (List.rev !refuted, stats)

(* ------------------------------------------------------------------ *)
(* QCheck property                                                      *)
(* ------------------------------------------------------------------ *)

let arb_case : (int * int) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (seed, idx) -> Printf.sprintf "fuzz seed=%d idx=%d" seed idx)
    QCheck.Gen.(pair (int_range 0 1_000_000) (int_range 0 7))

(** "No plan legality accepts is refuted by translation validation", as a
    qcheck property over generator seeds. *)
let prop_legality_accepted_plans_verify ?(count = 60) () : QCheck.Test.t =
  QCheck.Test.make ~name:"legality-accepted plans verify" ~count arb_case
    (fun (seed, idx) ->
      let c = (generate ~seed (idx + 1)).(idx) in
      match check c.c_program ~vf:c.c_vf ~if_:c.c_if with
      | Tv.Equivalent, _ -> true
      | Tv.Refuted _, _ -> false)
