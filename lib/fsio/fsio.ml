(** Durable-write primitives with deterministic disk-fault injection.

    Every durable writer in the system — agent checkpoints, the
    write-ahead reward journal, the serve daemon's on-disk store — funnels
    its bytes through this module, so a single injection point can
    simulate the disk failing under all of them: ENOSPC ([Disk_full]), an
    I/O error ([Disk_err]), and the nastiest of the three, a {e short
    write} that leaves a torn prefix of the record on disk before the
    error surfaces.  The writers' recovery contracts (atomic temp+rename,
    torn-tail truncation, CRC quarantine) are then testable without a
    real full disk.

    This library sits {e below} the fault policy: it neither hashes seeds
    nor parses specs.  The policy side ({!Faults} in the core library)
    installs an injector — a pure function of (operation, path, attempt
    index) — via {!set_injector}; with no injector installed every
    primitive is a plain write.  Keying by attempt index makes injected
    faults transient the way real ENOSPC usually is: the same logical
    write can fail on its first attempt and succeed on a retry, and
    whether it does is reproducible at any pool size.

    Counters ({!faults_injected}, {!write_errors}, {!tmp_swept}) are
    process-global and pulled into the {!Stats} scoreboard by the core
    library. *)

type fault_kind =
  | Disk_full  (** ENOSPC: the write fails before any byte lands *)
  | Disk_err  (** EIO-style failure; no bytes land *)
  | Short_write
      (** a prefix of the payload lands on disk, then the error surfaces
          — the case atomic-rename and torn-tail recovery exist for *)

let fault_kind_name = function
  | Disk_full -> "disk_full"
  | Disk_err -> "disk_err"
  | Short_write -> "short_write"

exception
  Disk_fault of {
    op : string;  (** logical operation, e.g. "checkpoint", "journal" *)
    path : string;
    kind : fault_kind;
  }

let () =
  Printexc.register_printer (function
    | Disk_fault { op; path; kind } ->
        Some
          (Printf.sprintf "Fsio.Disk_fault(%s on %s during %s)"
             (fault_kind_name kind) path op)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Injection plumbing                                                   *)
(* ------------------------------------------------------------------ *)

type injector = op:string -> path:string -> index:int -> fault_kind option

let lock = Mutex.create ()

let injector : injector option ref = ref None

(* attempt index per (op, basename): the injector sees how many times
   this logical write has been tried, so faults can be transient *)
let attempts : (string, int) Hashtbl.t = Hashtbl.create 16

let n_injected = Atomic.make 0

let n_write_errors = Atomic.make 0

let n_tmp_swept = Atomic.make 0

(** Install the fault policy.  [None] (the default) disables injection
    and resets the attempt counters, so test scopes start clean. *)
let set_injector (f : injector option) : unit =
  Mutex.protect lock (fun () ->
      injector := f;
      Hashtbl.reset attempts)

(** Faults injected / writer-reported disk errors / stale temp files
    swept, since the last {!reset_counters}. *)
let faults_injected () = Atomic.get n_injected

let write_errors () = Atomic.get n_write_errors

let tmp_swept () = Atomic.get n_tmp_swept

(** Called by a writer when it caught a [Disk_fault] (or a real
    [Sys_error]) and degraded or recovered; feeds the scoreboard. *)
let record_write_error () = Atomic.incr n_write_errors

let reset_counters () =
  Atomic.set n_injected 0;
  Atomic.set n_write_errors 0;
  Atomic.set n_tmp_swept 0

(* the fault (if any) for this attempt of (op, path); bumps the attempt
   counter as a side effect *)
let consult ~(op : string) ~(path : string) : fault_kind option =
  match !injector with
  | None -> None
  | Some f ->
      let decision =
        Mutex.protect lock (fun () ->
            match !injector with
            | None -> None
            | Some _ ->
                let key = op ^ "\x00" ^ Filename.basename path in
                let index =
                  Option.value ~default:0 (Hashtbl.find_opt attempts key)
                in
                Hashtbl.replace attempts key (index + 1);
                f ~op ~path ~index)
      in
      (match decision with
      | Some _ -> Atomic.incr n_injected
      | None -> ());
      decision

(* ------------------------------------------------------------------ *)
(* Guarded primitives                                                   *)
(* ------------------------------------------------------------------ *)

(** Append [data] to the open channel [oc] and flush.  Under an injected
    fault: [Disk_full]/[Disk_err] fail before any byte is written;
    [Short_write] writes (and flushes) a strict prefix first, so the
    caller's torn-record recovery actually has a torn record to recover
    from.  Raises {!Disk_fault}; the channel stays usable. *)
let output ~(op : string) ~(path : string) (oc : out_channel)
    (data : string) : unit =
  match consult ~op ~path with
  | None ->
      output_string oc data;
      flush oc
  | Some Short_write when String.length data > 1 ->
      output_string oc (String.sub data 0 (String.length data / 2));
      flush oc;
      raise (Disk_fault { op; path; kind = Short_write })
  | Some kind -> raise (Disk_fault { op; path; kind })

(** Truncate the file at [path] back to [len] bytes — the writer-side
    undo for a torn append.  Best-effort: returns whether the truncate
    succeeded (a file that vanished counts as success). *)
let truncate_back (path : string) (len : int) : bool =
  match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> true
  | exception Unix.Unix_error _ -> false
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.ftruncate fd len with
          | () -> true
          | exception Unix.Unix_error _ -> false)

(** Replace [path] with [data] atomically: the bytes land in
    [path ^ ".tmp"] first and are renamed over [path] only once complete.
    Under an injected fault the temp file is removed and {!Disk_fault}
    raised — [path] is never touched, so the previous version survives
    bit for bit. *)
let atomic_replace ~(op : string) (path : string) (data : string) : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output ~op ~path oc data
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

(** Remove a stale [".tmp"] sibling left by an interrupted atomic write
    next to [path]; counted in {!tmp_swept}.  Never touches [path]
    itself, and never raises. *)
let sweep_tmp (path : string) : bool =
  let tmp = path ^ ".tmp" in
  if Sys.file_exists tmp then (
    match Sys.remove tmp with
    | () ->
        Atomic.incr n_tmp_swept;
        true
    | exception Sys_error _ -> false)
  else false
